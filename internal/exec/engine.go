// Package exec is the execution engine: a discrete-event simulator that
// schedules RDD computations as stages and tasks over a cluster of
// transient servers.
//
// Semantics follow Spark's DAG scheduler: a job is an action on a target
// RDD; the lineage graph is cut into stages at shuffle dependencies;
// narrow chains are pipelined inside a single task; lost partitions are
// recomputed from the youngest available ancestor — a live cache entry, a
// checkpoint in the DFS, or in the worst case the source data (paper
// Figure 1). Server revocations destroy the node's cached partitions and
// shuffle outputs; the scheduler detects the loss (directly or via fetch
// failures) and transparently recomputes.
//
// Tasks execute their user code for real, but their *durations* are
// virtual, charged by a CostModel from the bytes they process and move
// (see DESIGN.md: the virtual-time substitution). Checkpoint writes are
// tasks too — they occupy a slot on the node that computed the partition,
// which is exactly how Flint's "checkpointing tax" arises.
//
// Every scheduler transition (job/stage/task lifecycle, checkpoint
// begin/end, cache evictions, node arrivals and revocations) is reported
// to an internal/obs bundle — see docs/OBSERVABILITY.md — and aggregate
// counters are available race-free through Snapshot.
package exec

import (
	"fmt"
	"sort"

	"flint/internal/cluster"
	"flint/internal/dfs"
	"flint/internal/obs"
	"flint/internal/rdd"
	"flint/internal/simclock"
)

// CheckpointPolicy is the hook through which Flint's fault-tolerance
// manager (internal/ckpt) drives automated checkpointing. All methods are
// called on the simulation thread.
type CheckpointPolicy interface {
	// ShouldCheckpoint reports whether a freshly materialized partition of
	// r should be written to the checkpoint store.
	ShouldCheckpoint(r *rdd.RDD, now float64) bool
	// NotifyStageActive fires when the engine starts computing r.
	NotifyStageActive(r *rdd.RDD, now float64)
	// NotifyStageDone fires when r's stage has no remaining work.
	NotifyStageDone(r *rdd.RDD, now float64)
	// NotifyCheckpointDone fires when one partition checkpoint completes.
	NotifyCheckpointDone(r *rdd.RDD, part int, bytes int64, wrote float64, now float64)
}

// Config tunes the engine.
type Config struct {
	Cost CostModel
	// Retry bounds the retry-with-backoff recovery for transient
	// checkpoint-write and shuffle-fetch failures (chaos injection).
	// Zero fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// SystemCheckpointInterval, when positive, enables the systems-level
	// checkpointing baseline of Figure 6b: every interval, each node
	// writes its entire memory state (cached partitions + shuffle
	// buffers) to the store.
	SystemCheckpointInterval float64
	// MaxEvents bounds RunJob's event count as a runaway guard (e.g. a
	// cluster whose MTTF is below the checkpoint time never progresses,
	// which the paper notes as the δ ≪ MTTF requirement).
	MaxEvents int
	// Workers bounds the goroutines that execute task user code during a
	// dispatch round (see workers.go for the determinism contract).
	// 0 uses the process default (SetDefaultWorkers, falling back to
	// runtime.GOMAXPROCS(0)); 1 runs fully serially, reproducing the
	// original single-threaded engine exactly. Any value produces
	// bit-identical results, stats, metrics and trace order in virtual
	// time; only wall-clock speed changes.
	Workers int
	// Backend selects the executor model (see backend.go and
	// docs/SERVERLESS.md). nil and VMBackend() are byte-identical: slots
	// are VM cores with local caches and lease billing. A backend whose
	// KeepsLocalState() is false (serverless.New) runs tasks as
	// ephemeral function invocations with externalized state.
	Backend Backend
}

// DefaultConfig returns the calibrated engine configuration.
func DefaultConfig() Config {
	return Config{Cost: DefaultCostModel(), MaxEvents: 20_000_000}
}

// Metrics aggregates engine-wide counters across jobs.
type Metrics struct {
	Revocations     int
	NodesJoined     int
	TasksLaunched   int
	TasksKilled     int
	CheckpointTasks int
	CheckpointBytes int64
	SystemCkptTasks int
	ComputeSeconds  float64 // total slot-seconds of compute tasks
	CkptSeconds     float64 // total slot-seconds of checkpoint tasks
}

// nodeState is the engine's view of one live server.
type nodeState struct {
	node      *cluster.Node
	freeSlots int
	cache     *blockCache
	running   map[*task]bool
	// sysCkptInFlight guards against overlapping system-level checkpoint
	// writes when the interval is shorter than the write time.
	sysCkptInFlight bool
}

// Engine schedules jobs over the cluster.
type Engine struct {
	clock  *simclock.Clock
	store  *dfs.Store
	cfg    Config
	cost   CostModel
	policy CheckpointPolicy

	nodes    map[int]*nodeState
	shuffles *shuffleTracker

	queue       []*task
	nextTaskSeq int
	nextStageID int
	nextJobID   int
	activeJobs  []*job
	pendingCkpt map[blockKey]bool
	computeSeen map[blockKey]int // how many times each partition was computed
	rrCursor    int
	sysTickOn   bool

	// workers is the resolved parallel execution width (see workers.go).
	workers int
	// scatterSem caps the helper goroutines map tasks may recruit for
	// parallel bucketing at workers-1 pool-wide (see parbucket.go);
	// capacity zero (Workers=1) keeps bucketing strictly inline.
	scatterSem chan struct{}

	// faults is the chaos injection hook (nil = no injection, zero
	// overhead); retry bounds the recovery behaviour it forces.
	faults FaultInjector
	retry  RetryPolicy

	// backend is the executor model; fnMode caches whether it
	// externalizes state (KeepsLocalState() == false), which gates every
	// serverless branch so the nil/VM path stays byte-identical.
	backend Backend
	fnMode  bool

	obs *obs.Obs
	// revokedAt holds the revocation instants still awaiting a
	// replacement node, oldest first, for the recovery-time histogram.
	revokedAt []float64

	metrics Metrics
}

// New creates an engine. Attach it to a cluster manager by passing
// Events() to cluster.New, then start the manager.
func New(clock *simclock.Clock, store *dfs.Store, cfg Config, policy CheckpointPolicy) *Engine {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 20_000_000
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	e := &Engine{
		clock: clock, store: store, cfg: cfg, cost: cfg.Cost, policy: policy,
		nodes:       make(map[int]*nodeState),
		shuffles:    newShuffleTracker(),
		pendingCkpt: make(map[blockKey]bool),
		computeSeen: make(map[blockKey]int),
		workers:     resolveWorkers(cfg.Workers),
		scatterSem:  make(chan struct{}, resolveWorkers(cfg.Workers)-1),
		retry:       cfg.Retry.withDefaults(),
		obs:         obs.Active(),
		backend:     cfg.Backend,
	}
	if e.backend == nil {
		e.backend = vmBackend{}
	}
	e.fnMode = !e.backend.KeepsLocalState()
	e.obs.ExecWorkers.Set(float64(e.workers))
	return e
}

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *simclock.Clock { return e.clock }

// SetObs installs the observability bundle the engine reports to. A nil
// argument installs the shared no-op bundle.
func (e *Engine) SetObs(o *obs.Obs) {
	if o == nil {
		o = obs.Nop()
	}
	e.obs = o
	e.obs.ExecWorkers.Set(float64(e.workers))
}

// Snapshot returns a copy of the engine-wide counters. Readers (webui,
// CLIs, experiments) must use this instead of reaching into engine state,
// so they never observe a half-updated struct.
func (e *Engine) Snapshot() Metrics { return e.metrics }

// SetPolicy installs (or replaces) the checkpoint policy. It exists
// because the policy usually needs the same clock and store the engine
// was built with.
func (e *Engine) SetPolicy(p CheckpointPolicy) { e.policy = p }

// Store returns the checkpoint store.
func (e *Engine) Store() *dfs.Store { return e.store }

// Backend returns the executor backend (vmBackend when Config.Backend
// was nil), for cost readout by experiments and CLIs.
func (e *Engine) Backend() Backend { return e.backend }

// Events returns the cluster-event handlers that wire a cluster.Manager
// to this engine.
func (e *Engine) Events() cluster.Events {
	return cluster.Events{
		OnNodeUp:  e.onNodeUp,
		OnRevoked: e.onRevoked,
	}
}

func (e *Engine) onNodeUp(n *cluster.Node) {
	if _, dup := e.nodes[n.ID]; dup {
		return
	}
	now := e.clock.Now()
	cache := newBlockCache(n.MemBytes, n.LocalDisk)
	cache.onEvict = func(k blockKey, bytes int64, demoted bool) {
		bits := 0
		if demoted {
			bits = 1
			e.obs.EvictToDisk.Inc()
		} else {
			e.obs.EvictDropped.Inc()
		}
		e.obs.Emit(obs.Event{
			Type: obs.EvBlockEvict, Time: e.clock.Now(),
			Node: n.ID, RDD: k.rddID, Part: k.part, Bytes: bytes, Bits: bits,
		})
	}
	e.nodes[n.ID] = &nodeState{
		node:      n,
		freeSlots: n.Slots,
		cache:     cache,
		running:   make(map[*task]bool),
	}
	e.metrics.NodesJoined++
	e.obs.NodesJoined.Inc()
	e.obs.LiveNodes.Set(float64(len(e.nodes)))
	e.obs.Emit(obs.Event{Type: obs.EvNodeUp, Time: now, Node: n.ID, Pool: n.Pool})
	// A node joining while revocations are outstanding is a replacement:
	// close the oldest recovery interval.
	if len(e.revokedAt) > 0 {
		e.obs.RecoveryTime.Observe(now - e.revokedAt[0])
		e.revokedAt = e.revokedAt[1:]
	}
	e.pump()
}

func (e *Engine) onRevoked(n *cluster.Node) {
	ns, ok := e.nodes[n.ID]
	if !ok {
		return
	}
	e.metrics.Revocations++
	e.obs.Revocations.Inc()
	e.obs.Emit(obs.Event{Type: obs.EvNodeRevoked, Time: e.clock.Now(), Node: n.ID, Pool: n.Pool})
	e.revokedAt = append(e.revokedAt, e.clock.Now())
	// Kill running tasks; their completion events become no-ops and the
	// work is re-discovered by the scheduler from ground truth.
	for t := range ns.running {
		t.killed = true
		e.metrics.TasksKilled++
		e.obs.TasksKilled.Inc()
		if t.kind == taskCompute {
			t.stage.job.stats.TasksKilled++
			delete(t.stage.inFlight, t.part)
		}
		if t.kind == taskCheckpoint {
			delete(e.pendingCkpt, blockKey{rddID: t.ckptRDD.ID, part: t.part})
		}
	}
	// All volatile state on the node is gone.
	e.shuffles.dropNode(n.ID)
	delete(e.nodes, n.ID)
	e.obs.LiveNodes.Set(float64(len(e.nodes)))
	e.pump()
}

// cachedAnywhere reports whether block k is in any live node's cache.
func (e *Engine) cachedAnywhere(k blockKey) bool {
	for _, ns := range e.nodes {
		if ns.cache.has(k) {
			return true
		}
	}
	return false
}

// checkpointKey is the store key for partition (r, p).
func checkpointKey(r *rdd.RDD, p int) string { return dfs.Key(r.ID, p) }

// fnCacheKey is the store key a function backend externalizes cached
// partition (r, p) under. It is a namespace of its own, distinct from
// the checkpoint manager's rdd/ keys, so the checkpoint-store
// consistency audit never mistakes externalized cache for orphaned
// checkpoints.
func fnCacheKey(r *rdd.RDD, p int) string { return fmt.Sprintf("fncache/%d/part/%d", r.ID, p) }

// Submit enqueues a job; cb runs at the virtual instant the job
// completes.
func (e *Engine) Submit(target *rdd.RDD, action Action, cb func(*Result)) {
	e.nextJobID++
	e.nextStageID++
	j := &job{
		id: e.nextJobID, target: target, action: action, cb: cb,
		mapStages: make(map[*rdd.ShuffleDep]*stage),
		results:   make([][]rdd.Row, target.NumParts),
		delivered: make([]bool, target.NumParts),
		start:     e.clock.Now(),
	}
	j.resultStage = &stage{
		id: e.nextStageID, job: j, out: target,
		numTasks: target.NumParts, inFlight: make(map[int]bool),
		hint: narrowClosureSize(target),
	}
	e.activeJobs = append(e.activeJobs, j)
	e.obs.Emit(obs.Event{Type: obs.EvJobSubmit, Time: j.start, Job: j.id})
	if e.cfg.SystemCheckpointInterval > 0 && !e.sysTickOn {
		e.sysTickOn = true
		e.clock.After(e.cfg.SystemCheckpointInterval, e.systemCkptTick)
	}
	e.pump()
}

// RunJob submits a job and drives the clock until it completes, returning
// its result. Events unrelated to the job (market revocations, node
// replacements) are processed as they come due.
func (e *Engine) RunJob(target *rdd.RDD, action Action) (*Result, error) {
	var res *Result
	e.Submit(target, action, func(r *Result) { res = r })
	steps := 0
	for res == nil {
		if !e.clock.Step() {
			return nil, fmt.Errorf("exec: job on %s deadlocked: no pending events (cluster empty and no replacements?)", target)
		}
		steps++
		if steps > e.cfg.MaxEvents {
			return nil, fmt.Errorf("exec: job on %s exceeded %d events; the cluster may be revoking faster than it can recompute (MTTF below checkpoint time)", target, e.cfg.MaxEvents)
		}
	}
	return res, nil
}

// pump is the heart of the scheduler: it re-derives, from ground truth
// (delivered results, registered shuffle outputs, live caches and
// checkpoints), which tasks must run, enqueues them, and dispatches onto
// free slots. It is idempotent and is invoked on every state change.
func (e *Engine) pump() {
	visited := make(map[*stage]bool)
	for _, j := range e.activeJobs {
		if !j.finished {
			e.trySubmit(j.resultStage, visited)
		}
	}
	e.dispatch()
}

// trySubmit enqueues the runnable needed partitions of s and recursively
// submits the parent map stages for partitions blocked on missing shuffle
// outputs.
func (e *Engine) trySubmit(s *stage, visited map[*stage]bool) {
	if visited[s] {
		return
	}
	visited[s] = true
	needed := e.stageNeededParts(s)
	var blockedDeps []*rdd.ShuffleDep
	seenDep := make(map[*rdd.ShuffleDep]bool)
	enqueued := false
	for _, p := range needed {
		if s.inFlight[p] {
			continue
		}
		miss := make(map[*rdd.ShuffleDep]bool)
		e.missingShuffles(s.out, p, miss, make(map[blockKey]bool))
		if len(miss) == 0 {
			e.enqueueCompute(s, p)
			enqueued = true
			continue
		}
		for dep := range miss {
			if !seenDep[dep] {
				seenDep[dep] = true
				blockedDeps = append(blockedDeps, dep)
			}
		}
	}
	if enqueued && !s.active {
		s.active = true
		s.activeSince = e.clock.Now()
		e.obs.Emit(obs.Event{
			Type: obs.EvStageSubmit, Time: s.activeSince,
			Job: s.job.id, Stage: s.id, RDD: s.out.ID,
		})
		if e.policy != nil {
			e.policy.NotifyStageActive(s.out, e.clock.Now())
		}
	}
	// Deterministic recursion order.
	sort.Slice(blockedDeps, func(i, j int) bool {
		return e.shuffles.register(blockedDeps[i]) < e.shuffles.register(blockedDeps[j])
	})
	for _, dep := range blockedDeps {
		e.trySubmit(s.job.mapStageFor(dep, e), visited)
	}
}

func (e *Engine) enqueueCompute(s *stage, part int) {
	e.nextTaskSeq++
	t := &task{seq: e.nextTaskSeq, kind: taskCompute, stage: s, part: part}
	s.inFlight[part] = true
	e.queue = append(e.queue, t)
}

// enqueueCheckpoint schedules an asynchronous checkpoint write of one
// partition, pinned to the node holding the freshly computed rows.
func (e *Engine) enqueueCheckpoint(ns *nodeState, cp computedPart) {
	e.nextTaskSeq++
	t := &task{
		seq: e.nextTaskSeq, kind: taskCheckpoint, node: ns, pinned: true,
		ckptRDD: cp.r, part: cp.part, ckptData: cp.data, ckptBytes: cp.bytes,
		attempt: 1,
	}
	e.pendingCkpt[blockKey{rddID: cp.r.ID, part: cp.part}] = true
	e.queue = append(e.queue, t)
}

// dispatch places queued tasks onto free slots, preferring data locality
// for compute tasks and honoring pinning for checkpoint tasks. It runs in
// three phases: slot assignment on the simulation thread (in queue
// order), effects computation fanned out across the worker pool, and
// effects commitment back on the simulation thread in assignment order —
// so the observable schedule is independent of Config.Workers.
func (e *Engine) dispatch() {
	if len(e.queue) == 0 {
		return
	}
	nodes := e.sortedNodes()
	if len(nodes) == 0 {
		return
	}
	var remaining, launched []*task
	for qi := 0; qi < len(e.queue); qi++ {
		t := e.queue[qi]
		if t.killed {
			continue
		}
		if t.pinned {
			ns, alive := e.nodes[t.node.node.ID]
			if !alive || ns != t.node {
				// Node revoked before the write started: the data is gone.
				if t.kind == taskCheckpoint {
					delete(e.pendingCkpt, blockKey{rddID: t.ckptRDD.ID, part: t.part})
				}
				continue
			}
			if ns.freeSlots > 0 {
				e.assign(t, ns)
				launched = append(launched, t)
			} else {
				remaining = append(remaining, t)
			}
			continue
		}
		ns := e.pickNode(t, nodes)
		if ns == nil {
			remaining = append(remaining, t)
			continue
		}
		e.assign(t, ns)
		launched = append(launched, t)
	}
	e.queue = remaining
	if len(launched) == 0 {
		return
	}
	e.runTaskBatch(launched, nodes)
	for _, t := range launched {
		e.commit(t)
	}
}

// pickNode chooses a node with a free slot, preferring the node that
// caches the task's target partition, then round-robin.
func (e *Engine) pickNode(t *task, nodes []*nodeState) *nodeState {
	if t.kind == taskCompute {
		k := blockKey{rddID: t.stage.out.ID, part: t.part}
		for _, ns := range nodes {
			if ns.freeSlots > 0 && ns.cache.has(k) {
				return ns
			}
		}
	}
	n := len(nodes)
	for i := 0; i < n; i++ {
		ns := nodes[(e.rrCursor+i)%n]
		if ns.freeSlots > 0 {
			e.rrCursor = (e.rrCursor + i + 1) % n
			return ns
		}
	}
	return nil
}

// assign binds a task to a slot on a node and emits its launch event.
// The task's work has not run yet — that happens in the round's batch —
// so assign must not read anything the batch will compute.
func (e *Engine) assign(t *task, ns *nodeState) {
	t.node = ns
	ns.freeSlots--
	ns.running[t] = true
	e.metrics.TasksLaunched++
	e.obs.TasksLaunched.Inc()
	now := e.clock.Now()
	switch t.kind {
	case taskCompute:
		t.stage.job.stats.TasksLaunched++
		e.obs.Emit(obs.Event{
			Type: obs.EvTaskLaunch, Time: now, Job: t.stage.job.id,
			Stage: t.stage.id, Task: t.seq, Node: ns.node.ID, Part: t.part,
		})
	case taskCheckpoint:
		e.obs.Emit(obs.Event{
			Type: obs.EvCheckpointBegin, Time: now, Task: t.seq,
			Node: ns.node.ID, RDD: t.ckptRDD.ID, Part: t.part, Bytes: t.ckptBytes,
		})
	case taskSystemCkpt:
		e.obs.Emit(obs.Event{
			Type: obs.EvCheckpointBegin, Time: now, Task: t.seq,
			Node: ns.node.ID, Bytes: t.sysBytes,
		})
	}
	if e.fnMode {
		e.applyInvoke(t, ns, now)
	}
}

// commit applies a task's dispatch-time effects on the simulation thread
// — the reads its computation performed (LRU touches, checkpoint-store
// read accounting), the charged slot time — and schedules its completion
// event. Called in assignment order, it reproduces the serial engine's
// state transitions exactly.
func (e *Engine) commit(t *task) {
	t.dur = t.eff.duration
	if t.invokeDelay > 0 {
		// Function launch latency (cold start, admission retries) charged
		// at assignment occupies the slot before the work begins.
		t.dur += t.invokeDelay
	}
	if t.eff.slowed {
		e.obs.ChaosSlowdowns.Inc()
	}
	switch t.kind {
	case taskCompute:
		e.metrics.ComputeSeconds += t.dur
		for _, tc := range t.eff.lruTouches {
			tc.cache.touch(tc.key)
		}
		if t.eff.ckptReads > 0 {
			e.store.NoteReads(t.eff.ckptReads, t.eff.storeReadBytes)
		}
	case taskCheckpoint, taskSystemCkpt:
		e.metrics.CkptSeconds += t.dur
	}
	e.clock.After(t.dur, func() { e.onTaskDone(t) })
}

// onTaskDone applies a finished task's effects.
func (e *Engine) onTaskDone(t *task) {
	if t.killed {
		return
	}
	ns := t.node
	ns.freeSlots++
	delete(ns.running, t)
	now := e.clock.Now()
	if e.fnMode {
		// Every completed task is one billed invocation; its slot returns
		// to the node's warm pool.
		e.backend.NoteRelease(ns.node.ID, now)
		e.backend.AccrueInvocation(t.dur)
		e.obs.FnBilledDollars.Set(e.backend.AccruedCost())
		e.obs.FnBilledGBSeconds.Set(e.backend.AccruedGBSeconds())
	}

	switch t.kind {
	case taskCheckpoint:
		k := blockKey{rddID: t.ckptRDD.ID, part: t.part}
		if e.faults != nil && e.faults.CkptWriteFails(t.ckptRDD.ID, t.part, t.attempt, now) {
			e.onCheckpointWriteFailed(t, now)
			return
		}
		delete(e.pendingCkpt, k)
		e.store.Put(checkpointKey(t.ckptRDD, t.part), t.ckptData, t.ckptBytes, now)
		e.metrics.CheckpointTasks++
		e.metrics.CheckpointBytes += t.ckptBytes
		e.obs.CheckpointTasks.Inc()
		e.obs.CheckpointBytes.Add(t.ckptBytes)
		e.obs.CkptDur.Observe(t.dur)
		e.obs.CkptWriteBytes.Observe(float64(t.ckptBytes))
		e.obs.Emit(obs.Event{
			Type: obs.EvCheckpointEnd, Time: now, Dur: t.dur, Task: t.seq,
			Node: ns.node.ID, RDD: t.ckptRDD.ID, Part: t.part, Bytes: t.ckptBytes,
		})
		if e.policy != nil {
			e.policy.NotifyCheckpointDone(t.ckptRDD, t.part, t.ckptBytes, e.store.WriteTime(t.ckptBytes), now)
		}
		e.pump()
		return
	case taskSystemCkpt:
		ns.sysCkptInFlight = false
		e.store.Put(fmt.Sprintf("sys/node/%d", ns.node.ID), nil, t.sysBytes, now)
		e.metrics.SystemCkptTasks++
		e.obs.SystemCkptTasks.Inc()
		e.obs.Emit(obs.Event{
			Type: obs.EvCheckpointEnd, Time: now, Dur: t.dur, Task: t.seq,
			Node: ns.node.ID, Bytes: t.sysBytes,
		})
		e.pump()
		return
	}

	s := t.stage
	j := s.job
	delete(s.inFlight, t.part)
	e.obs.TaskDur.Observe(t.dur)
	e.obs.Emit(obs.Event{
		Type: obs.EvTaskDone, Time: now, Dur: t.dur, Job: j.id,
		Stage: s.id, Task: t.seq, Node: ns.node.ID, Part: t.part,
	})

	if t.eff.fetchRetries > 0 {
		// Injected fetch failures the task retried through (whether or
		// not it ultimately succeeded), booked on the simulation thread.
		e.obs.ChaosFetchFailures.Add(int64(t.eff.fetchRetries))
		e.obs.RetryAttempts.Add(int64(t.eff.fetchRetries))
		e.obs.RetryBackoff.Observe(t.eff.retryBackoff)
		e.obs.Emit(obs.Event{
			Type: obs.EvRetry, Time: now, Dur: t.eff.retryBackoff,
			Task: t.seq, Node: ns.node.ID, Part: t.part, Bits: t.eff.fetchRetries,
		})
	}
	if len(t.eff.fetchFailed) > 0 {
		j.stats.FetchFailures++
		// Retry-exhausted sources: their map outputs for the dep are
		// treated as lost, so the parent stage genuinely recomputes
		// instead of refetching the same poisoned outputs forever.
		for _, inj := range t.eff.injectedFetch {
			e.shuffles.dropDepNode(inj.dep, inj.node)
			e.obs.RetryExhausted.Inc()
			e.obs.Emit(obs.Event{
				Type: obs.EvFaultInjected, Time: now, Task: t.seq,
				Node: inj.node, Part: t.part, Bits: faultBitFetch,
			})
		}
		e.pump() // resubmission happens from ground truth
		return
	}

	// Book compute statistics.
	j.stats.ShuffleBytesRemote += t.eff.remoteBytes
	j.stats.ShuffleBytesLocal += t.eff.localBytes
	j.stats.CacheHits += t.eff.cacheHits
	j.stats.CacheMisses += t.eff.cacheMisses
	j.stats.CheckpointReads += t.eff.ckptReads
	e.obs.ShuffleRemote.Add(t.eff.remoteBytes)
	e.obs.ShuffleLocal.Add(t.eff.localBytes)
	e.obs.CacheHits.Add(int64(t.eff.cacheHits))
	e.obs.CacheMisses.Add(int64(t.eff.cacheMisses))
	for _, cp := range t.eff.computed {
		k := blockKey{rddID: cp.r.ID, part: cp.part}
		e.computeSeen[k]++
		if e.computeSeen[k] > 1 {
			j.stats.RecomputedPartitions++
			e.obs.Recomputed.Inc()
		}
	}
	// Cache insertions — or, on a function backend, externalization: the
	// invocation's sandbox dies with the task, so cached partitions land
	// in the dfs store under fncache/ keys (the write time was already
	// charged into the task's duration by record).
	for _, cp := range t.eff.toCache {
		if e.fnMode {
			e.store.Put(fnCacheKey(cp.r, cp.part), cp.data, cp.bytes, now)
			continue
		}
		ns.cache.put(blockKey{rddID: cp.r.ID, part: cp.part}, cp.data, cp.bytes)
	}
	if e.fnMode && (t.eff.extReadBytes > 0 || t.eff.extWriteBytes > 0) {
		e.obs.FnExtReadBytes.Add(t.eff.extReadBytes)
		e.obs.FnExtWriteBytes.Add(t.eff.extWriteBytes)
	}
	// Checkpoint consultation for everything materialized or touched
	// here: explicit RDD.Checkpoint() requests always write; otherwise
	// the automated policy decides.
	offer := append(append([]computedPart(nil), t.eff.computed...), t.eff.touched...)
	for _, cp := range offer {
		k := blockKey{rddID: cp.r.ID, part: cp.part}
		if e.pendingCkpt[k] || e.store.Has(checkpointKey(cp.r, cp.part)) {
			continue
		}
		if e.fnMode && e.store.Has(fnCacheKey(cp.r, cp.part)) {
			// Already durable via externalization; a checkpoint copy
			// would only duplicate it.
			continue
		}
		if cp.r.CheckpointRequested || (e.policy != nil && e.policy.ShouldCheckpoint(cp.r, now)) {
			j.stats.CheckpointTasks++
			j.stats.CheckpointBytes += cp.bytes
			e.enqueueCheckpoint(ns, cp)
		}
	}

	if s.isResult() {
		if !j.delivered[t.part] {
			j.delivered[t.part] = true
			j.results[t.part] = t.eff.resultRows
			j.nDelivered++
		}
		if j.nDelivered == s.numTasks {
			e.finishJob(j, now)
		}
	} else {
		pub := ns.node.ID
		if e.fnMode {
			// Map outputs are uploaded to the external store (charged in
			// runCompute), so they survive any revocation: register them
			// under the external pseudo node and mirror the bytes into the
			// store's accounting for storage billing and audits.
			pub = externalNode
		}
		e.shuffles.putOutput(s.dep, t.part, pub, t.eff.mapBuckets)
		if e.fnMode {
			sid := e.shuffles.register(s.dep)
			if o := e.shuffles.state(s.dep).outputs[t.part]; o != nil {
				e.store.Put(fmt.Sprintf("fnshuffle/%d/map/%d", sid, t.part), nil, o.total, now)
			}
		}
		if e.shuffles.state(s.dep).available() && len(s.inFlight) == 0 && s.active {
			s.active = false
			e.emitStageDone(s, now)
			if e.policy != nil {
				e.policy.NotifyStageDone(s.out, now)
			}
		}
	}
	e.pump()
}

// Fault-kind discriminators carried in EvFaultInjected's Bits field.
// internal/chaos uses further values for the faults it injects itself
// (revocations, market crashes, store read corruption).
const (
	faultBitCkptWrite = 1
	faultBitFetch     = 2
	faultBitInvoke    = 5
)

// onCheckpointWriteFailed handles an injected transient checkpoint-write
// failure: bounded retry with virtual-clock backoff on the same pinned
// node, then abandonment (the partition stays un-checkpointed; the next
// materialization re-offers it to the policy).
func (e *Engine) onCheckpointWriteFailed(t *task, now float64) {
	k := blockKey{rddID: t.ckptRDD.ID, part: t.part}
	e.obs.ChaosCkptWriteFailures.Inc()
	e.obs.Emit(obs.Event{
		Type: obs.EvFaultInjected, Time: now, Task: t.seq,
		Node: t.node.node.ID, RDD: t.ckptRDD.ID, Part: t.part, Bits: faultBitCkptWrite,
	})
	if t.attempt < e.retry.MaxAttempts {
		d := e.retry.backoff(t.attempt)
		e.obs.RetryAttempts.Inc()
		e.obs.RetryBackoff.Observe(d)
		e.obs.Emit(obs.Event{
			Type: obs.EvRetry, Time: now, Dur: d, Task: t.seq,
			RDD: t.ckptRDD.ID, Part: t.part, Bits: t.attempt,
		})
		// pendingCkpt stays set through the wait so completions of other
		// tasks don't enqueue a duplicate write of the same partition.
		e.clock.After(d, func() { e.requeueCheckpoint(t) })
		e.pump()
		return
	}
	delete(e.pendingCkpt, k)
	e.obs.RetryExhausted.Inc()
	if fp, ok := e.policy.(FailureAwarePolicy); ok {
		fp.NotifyCheckpointFailed(t.ckptRDD, t.part, t.attempt, now)
	}
	e.pump()
}

// requeueCheckpoint re-enqueues a failed checkpoint write after its
// backoff wait, pinned to the original node. If that node died during the
// wait the payload rows are gone with it and the write is abandoned.
func (e *Engine) requeueCheckpoint(t *task) {
	k := blockKey{rddID: t.ckptRDD.ID, part: t.part}
	ns, alive := e.nodes[t.node.node.ID]
	if !alive || ns != t.node {
		delete(e.pendingCkpt, k)
		e.pump()
		return
	}
	e.nextTaskSeq++
	e.queue = append(e.queue, &task{
		seq: e.nextTaskSeq, kind: taskCheckpoint, node: t.node, pinned: true,
		ckptRDD: t.ckptRDD, part: t.part, ckptData: t.ckptData, ckptBytes: t.ckptBytes,
		attempt: t.attempt + 1,
	})
	e.pump()
}

// emitStageDone records a stage's active interval as a span.
func (e *Engine) emitStageDone(s *stage, now float64) {
	e.obs.Emit(obs.Event{
		Type: obs.EvStageDone, Time: now, Dur: now - s.activeSince,
		Job: s.job.id, Stage: s.id, RDD: s.out.ID,
	})
}

// finishJob assembles the job result and invokes the callback.
func (e *Engine) finishJob(j *job, now float64) {
	j.finished = true
	if j.resultStage.active {
		j.resultStage.active = false
		e.emitStageDone(j.resultStage, now)
		if e.policy != nil {
			e.policy.NotifyStageDone(j.target, now)
		}
	}
	e.obs.JobDur.Observe(now - j.start)
	e.obs.Emit(obs.Event{Type: obs.EvJobFinish, Time: now, Dur: now - j.start, Job: j.id})
	res := &Result{Start: j.start, End: now, Stats: j.stats}
	switch j.action {
	case ActionCollect:
		for _, part := range j.results {
			res.Rows = append(res.Rows, part...)
		}
	case ActionCount:
		for _, part := range j.results {
			res.Count += int64(len(part))
		}
	}
	// Drop the per-partition buffers for materialize/count.
	if j.action != ActionCollect {
		j.results = nil
	}
	// Remove from active list.
	for i, a := range e.activeJobs {
		if a == j {
			e.activeJobs = append(e.activeJobs[:i], e.activeJobs[i+1:]...)
			break
		}
	}
	if j.cb != nil {
		j.cb(res)
	}
}

// systemCkptTick implements the systems-level checkpointing baseline:
// every interval, each node writes its full memory state.
func (e *Engine) systemCkptTick() {
	if len(e.activeJobs) == 0 {
		e.sysTickOn = false
		return
	}
	for _, ns := range e.sortedNodes() {
		if ns.sysCkptInFlight {
			continue
		}
		mem, disk := ns.cache.usage()
		bytes := mem + disk + e.shuffles.nodeBytes(ns.node.ID)
		if bytes == 0 {
			continue
		}
		ns.sysCkptInFlight = true
		e.nextTaskSeq++
		e.queue = append(e.queue, &task{
			seq: e.nextTaskSeq, kind: taskSystemCkpt, node: ns, pinned: true,
			sysBytes: bytes,
		})
	}
	e.dispatch()
	e.clock.After(e.cfg.SystemCheckpointInterval, e.systemCkptTick)
}

// LiveNodeCount returns the number of nodes currently registered.
func (e *Engine) LiveNodeCount() int { return len(e.nodes) }

// CachedBytes returns the cluster-wide cached bytes (memory + disk tiers).
func (e *Engine) CachedBytes() (mem, disk int64) {
	for _, ns := range e.nodes {
		m, d := ns.cache.usage()
		mem += m
		disk += d
	}
	return mem, disk
}

// ComputeCount returns how many times partition (rddID, part) has been
// computed (for recomputation assertions in tests).
func (e *Engine) ComputeCount(rddID, part int) int {
	return e.computeSeen[blockKey{rddID: rddID, part: part}]
}

// Audit cross-checks the engine's incremental byte accounting against a
// full recomputation from ground truth: every live node's cache counters
// versus its resident blocks, and the shuffle tracker's per-node totals
// versus the registered map outputs. It returns the first inconsistency
// found, or nil. Used by the chaos invariant checkers after a fault run.
func (e *Engine) Audit() error {
	for _, ns := range e.sortedNodes() {
		if err := ns.cache.audit(); err != nil {
			return fmt.Errorf("exec: node %d cache: %w", ns.node.ID, err)
		}
	}
	if err := e.shuffles.audit(); err != nil {
		return fmt.Errorf("exec: shuffle tracker: %w", err)
	}
	return nil
}
