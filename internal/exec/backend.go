// Backend abstracts what kind of executor occupies a task slot. The
// engine's scheduling loop (assign → run → commit → onTaskDone) is
// backend-agnostic; a Backend decides what launching a task costs in
// virtual time (VM slots are free to enter, function slots pay a cold
// start unless a warm slot is available) and how slot time turns into
// dollars (VM leases bill through internal/market's Exchange; function
// slots bill per invocation plus GB-seconds).
//
// The contract that keeps determinism intact: InvokeDelay and
// NoteRelease are called only on the simulation thread, in task
// assignment order, so any internal slot-pool state evolves identically
// at every Config.Workers width. Backends must not read wall-clock time
// or global randomness (flintlint enforces both).
package exec

import "flint/internal/obs"

// Backend is the executor model behind task slots.
//
// A backend with KeepsLocalState() == true (the VM model) leaves the
// engine's behaviour untouched: node block caches hold RDD partitions,
// shuffle outputs live on the node that produced them, and revocation
// destroys both. A backend with KeepsLocalState() == false (the
// function model) runs every task as an ephemeral invocation: the
// engine bypasses node caches, externalizes cached partitions and
// shuffle segments through the dfs store, charges InvokeDelay at
// launch, and accrues invocation billing at completion.
type Backend interface {
	// Name identifies the backend in CSV exports and CLI flags.
	Name() string
	// KeepsLocalState reports whether executors retain block caches and
	// shuffle outputs across tasks (VMs do; function slots do not).
	KeepsLocalState() bool
	// InvokeDelay returns the virtual seconds of launch latency for one
	// task on the given engine node at virtual instant now, and whether
	// the launch was a cold start. Simulation thread only, assignment
	// order.
	InvokeDelay(node int, now float64) (delay float64, cold bool)
	// NoteRelease informs the backend that a task on node finished at
	// now, returning its slot to the warm pool. Simulation thread only.
	NoteRelease(node int, now float64)
	// AccrueInvocation bills one completed invocation that occupied its
	// slot for dur virtual seconds and returns the incremental cost.
	AccrueInvocation(dur float64) float64
	// AccruedCost returns the total dollars billed so far.
	AccruedCost() float64
	// AccruedGBSeconds returns the total GB-seconds metered so far.
	AccruedGBSeconds() float64
}

// vmBackend is the default: slots are cores on leased VMs, launch is
// free (the lease already paid for the machine), and billing happens in
// internal/market per lease, not per task. It holds no state, so the
// engine's fast path is byte-identical to the pre-Backend engine.
type vmBackend struct{}

func (vmBackend) Name() string                             { return "vm" }
func (vmBackend) KeepsLocalState() bool                    { return true }
func (vmBackend) InvokeDelay(int, float64) (float64, bool) { return 0, false }
func (vmBackend) NoteRelease(int, float64)                 {}
func (vmBackend) AccrueInvocation(float64) float64         { return 0 }
func (vmBackend) AccruedCost() float64                     { return 0 }
func (vmBackend) AccruedGBSeconds() float64                { return 0 }

// VMBackend returns the default VM executor backend. A nil
// Config.Backend behaves identically.
func VMBackend() Backend { return vmBackend{} }

// externalNode is the pseudo node ID under which a function backend
// registers shuffle map outputs: the segments live in the external
// store, so no node revocation can drop them and every read is remote.
const externalNode = -1

// applyInvoke charges the backend's launch latency to a task at
// assignment time (simulation thread, queue order): cold-start delay,
// chaos-injected invocation admission failures (bounded virtual-clock
// retries — the final attempt always lands, so outcomes never change),
// and cold-start straggler stretch. The delay is added to the task's
// slot time by commit.
func (e *Engine) applyInvoke(t *task, ns *nodeState, now float64) {
	delay, cold := e.backend.InvokeDelay(ns.node.ID, now)
	if e.faults != nil {
		if inj, ok := e.faults.(InvokeFaultInjector); ok {
			if cold {
				if f := inj.ColdStartSlowdown(ns.node.ID, now); f > 1 {
					delay *= f
					t.effColdSlow = true
				}
			}
			for attempt := 1; attempt < e.retry.MaxAttempts; attempt++ {
				if !inj.InvokeFails(ns.node.ID, attempt, now) {
					break
				}
				t.invokeFails++
				delay += e.retry.backoff(attempt)
			}
		}
	}
	t.invokeDelay = delay
	t.cold = cold
	e.obs.FnInvocations.Inc()
	if t.invokeFails > 0 {
		e.obs.FnInvokeFailures.Add(int64(t.invokeFails))
		e.obs.RetryAttempts.Add(int64(t.invokeFails))
		e.obs.Emit(obs.Event{
			Type: obs.EvFaultInjected, Time: now, Task: t.seq,
			Node: ns.node.ID, Part: t.part, Bits: faultBitInvoke,
		})
	}
	if cold {
		e.obs.FnColdStarts.Inc()
		e.obs.FnColdStartDur.Observe(delay)
		if t.effColdSlow {
			e.obs.ChaosColdStragglers.Inc()
		}
		e.obs.Emit(obs.Event{
			Type: obs.EvColdStart, Time: now, Dur: delay, Task: t.seq,
			Node: ns.node.ID, Bits: t.invokeFails,
		})
	}
	bits := 0
	if cold {
		bits = 1
	}
	e.obs.Emit(obs.Event{
		Type: obs.EvInvoke, Time: now, Dur: delay, Task: t.seq,
		Node: ns.node.ID, Bits: bits,
	})
}
