package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"flint/internal/rdd"
	"flint/internal/simclock"
)

// randomDAG builds a random RDD program from a seeded generator: a mix of
// narrow transformations, unions, and shuffle operators over a couple of
// sources. Every operation is deterministic, so rdd.EvalLocal is an
// exact oracle for the engine.
func randomDAG(seed int64) *rdd.RDD {
	rng := rand.New(rand.NewSource(seed))
	c := rdd.NewContext(4)
	mkSource := func(id int) *rdd.RDD {
		n := 100 + rng.Intn(300)
		parts := 2 + rng.Intn(5)
		return c.Parallelize(fmt.Sprintf("src%d", id), parts, 64, func(part int) []rdd.Row {
			var out []rdd.Row
			for i := part; i < n; i += parts {
				out = append(out, i*(id+1))
			}
			return out
		})
	}
	pool := []*rdd.RDD{mkSource(0), mkSource(1)}
	keyed := func(r *rdd.RDD, tag int) *rdd.RDD {
		return r.Map(fmt.Sprintf("kv%d", tag), func(x rdd.Row) rdd.Row {
			if kv, ok := x.(rdd.KV); ok {
				return kv
			}
			return rdd.KV{K: x.(int) % 13, V: 1}
		})
	}
	ops := 3 + rng.Intn(8)
	for i := 0; i < ops; i++ {
		r := pool[rng.Intn(len(pool))]
		var next *rdd.RDD
		switch rng.Intn(6) {
		case 0:
			next = r.Map(fmt.Sprintf("map%d", i), func(x rdd.Row) rdd.Row {
				if kv, ok := x.(rdd.KV); ok {
					return rdd.KV{K: kv.K, V: kv.V}
				}
				return x.(int) + 1
			})
		case 1:
			next = r.Filter(fmt.Sprintf("filter%d", i), func(x rdd.Row) bool {
				if kv, ok := x.(rdd.KV); ok {
					return rdd.HashKey(kv.K)%3 != 0
				}
				return x.(int)%3 != 0
			})
		case 2:
			other := pool[rng.Intn(len(pool))]
			next = r.Union(fmt.Sprintf("union%d", i), other)
		case 3:
			next = keyed(r, i).ReduceByKey(fmt.Sprintf("reduce%d", i), 2+rng.Intn(4), func(a, b rdd.Row) rdd.Row {
				av, aok := a.(int)
				bv, bok := b.(int)
				if aok && bok {
					return av + bv
				}
				return a
			})
		case 4:
			if rng.Intn(2) == 0 {
				next = r.Persist()
			} else {
				next = r.Map(fmt.Sprintf("cachein%d", i), func(x rdd.Row) rdd.Row { return x }).Persist()
			}
		default:
			other := keyed(pool[rng.Intn(len(pool))], i+100)
			next = keyed(r, i).Join(fmt.Sprintf("join%d", i), other, 2+rng.Intn(3))
		}
		pool = append(pool, next)
	}
	// Final target: count-friendly reduce so results compare cheaply but
	// still exercise rows.
	return keyed(pool[len(pool)-1], 999).ReduceByKey("final", 3, func(a, b rdd.Row) rdd.Row {
		av, aok := a.(int)
		bv, bok := b.(int)
		if aok && bok {
			return av + bv
		}
		return a
	})
}

// canonicalize renders rows order-insensitively.
func canonicalize(rows []rdd.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%#v", r)
	}
	sort.Strings(out)
	return out
}

// TestFuzzEngineMatchesOracle runs randomly generated DAGs on the engine
// under randomly scheduled revocations and asserts bit-for-bit agreement
// with the local evaluator. This is the repository's core correctness
// property: failures never change answers.
func TestFuzzEngineMatchesOracle(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(trial) * 7919
		target := randomDAG(seed)
		want := canonicalize(rdd.CollectLocal(target))

		rng := rand.New(rand.NewSource(seed + 1))
		tb := MustTestbed(TestbedOpts{Nodes: 3 + rng.Intn(4)})
		// Up to three revocation events at random times early in the run.
		for e := 0; e < rng.Intn(4); e++ {
			at := 1 + rng.Float64()*120
			k := 1 + rng.Intn(2)
			tb.RevokeNodes(at, k, true)
		}
		res, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := canonicalize(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("trial %d: row counts %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %d differs:\n  engine %s\n  oracle %s", trial, i, got[i], want[i])
			}
		}
		// And the run must terminate with a sane clock.
		if res.Latency() <= 0 || res.Latency() > simclock.Hours(100) {
			t.Fatalf("trial %d: suspicious latency %v", trial, res.Latency())
		}
	}
}

// TestFuzzWorkerWidthInvariance is the property form of the parallel
// execution contract: for random DAGs under random revocation schedules,
// a Workers=1 engine and a Workers=8 engine must agree on everything —
// delivered rows in delivery order, the full JobStats, the engine's
// counters, and the virtual makespan.
func TestFuzzWorkerWidthInvariance(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 6
	}
	type runOut struct {
		rows  []string
		stats JobStats
		snap  Metrics
		lat   float64
	}
	runOne := func(trial int, workers int) runOut {
		seed := int64(trial)*15485863 + 11
		// Rebuild the DAG and the revocation schedule from the seed so the
		// two runs share exactly one variable: the pool width.
		target := randomDAG(seed)
		rng := rand.New(rand.NewSource(seed + 1))
		tb := MustTestbed(TestbedOpts{Nodes: 3 + rng.Intn(4), Workers: workers})
		for e := 0; e < rng.Intn(4); e++ {
			at := 1 + rng.Float64()*120
			k := 1 + rng.Intn(2)
			tb.RevokeNodes(at, k, true)
		}
		res, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
		}
		rows := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			rows[i] = fmt.Sprintf("%#v", r) // delivery order, NOT canonicalized
		}
		return runOut{rows: rows, stats: res.Stats, snap: tb.Engine.Snapshot(), lat: res.Latency()}
	}
	for trial := 0; trial < trials; trial++ {
		serial := runOne(trial, 1)
		wide := runOne(trial, 8)
		if len(serial.rows) != len(wide.rows) {
			t.Fatalf("trial %d: row counts %d vs %d", trial, len(serial.rows), len(wide.rows))
		}
		for i := range serial.rows {
			if serial.rows[i] != wide.rows[i] {
				t.Fatalf("trial %d: delivery-order row %d differs:\n  w1 %s\n  w8 %s",
					trial, i, serial.rows[i], wide.rows[i])
			}
		}
		if serial.stats != wide.stats {
			t.Fatalf("trial %d: JobStats differ:\n  w1 %+v\n  w8 %+v", trial, serial.stats, wide.stats)
		}
		if serial.snap != wide.snap {
			t.Fatalf("trial %d: engine counters differ:\n  w1 %+v\n  w8 %+v", trial, serial.snap, wide.snap)
		}
		if serial.lat != wide.lat {
			t.Fatalf("trial %d: virtual makespan %v vs %v", trial, serial.lat, wide.lat)
		}
	}
}

// TestFuzzRerunsAreIdenticalAfterChaos re-runs the same job twice on one
// testbed with a revocation between the runs; caching plus recomputation
// must never change the answer.
func TestFuzzRerunsAreIdenticalAfterChaos(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(trial)*104729 + 5
		target := randomDAG(seed)
		tb := MustTestbed(TestbedOpts{Nodes: 4})
		r1, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatalf("trial %d run 1: %v", trial, err)
		}
		tb.RevokeNodes(tb.Clock.Now()+1, 2, true)
		tb.Clock.RunUntil(tb.Clock.Now() + 150)
		r2, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatalf("trial %d run 2: %v", trial, err)
		}
		a, b := canonicalize(r1.Rows), canonicalize(r2.Rows)
		if len(a) != len(b) {
			t.Fatalf("trial %d: row counts %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: rerun row %d differs", trial, i)
			}
		}
	}
}
