package exec

import (
	"testing"

	"flint/internal/rdd"
)

// wrapBuckets lifts classic []Row buckets into tail-only batches for
// the batch-typed tracker API.
func wrapBuckets(bs [][]rdd.Row) []*rdd.ColBatch {
	out := make([]*rdd.ColBatch, len(bs))
	for i, b := range bs {
		out[i] = rdd.WrapRows(b)
	}
	return out
}

func shuffleFixture() (*shuffleTracker, *rdd.ShuffleDep) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 3, 10, func(part int) []rdd.Row { return nil })
	dep := &rdd.ShuffleDep{P: src, NumOut: 2}
	return newShuffleTracker(), dep
}

func TestShuffleTrackerRegisterIdempotent(t *testing.T) {
	tr, dep := shuffleFixture()
	id1 := tr.register(dep)
	id2 := tr.register(dep)
	if id1 != id2 {
		t.Fatalf("register not idempotent: %v vs %v", id1, id2)
	}
	if tr.state(dep) == nil {
		t.Fatal("state missing")
	}
}

func TestShuffleTrackerAvailability(t *testing.T) {
	tr, dep := shuffleFixture()
	st := tr.state(dep)
	if st.available() {
		t.Fatal("fresh shuffle should not be available")
	}
	if got := st.missingParts(); len(got) != 3 {
		t.Fatalf("missing = %v", got)
	}
	tr.putOutput(dep, 0, 1, wrapBuckets([][]rdd.Row{{1}, {2}}))
	tr.putOutput(dep, 2, 2, wrapBuckets([][]rdd.Row{{3}, nil}))
	if st.available() {
		t.Fatal("partially registered shuffle should not be available")
	}
	if got := st.missingParts(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("missing = %v", got)
	}
	tr.putOutput(dep, 1, 1, wrapBuckets([][]rdd.Row{nil, {4}}))
	if !st.available() {
		t.Fatal("fully registered shuffle should be available")
	}
}

func TestShuffleFetchOrderAndLocality(t *testing.T) {
	tr, dep := shuffleFixture()
	tr.putOutput(dep, 0, 1, wrapBuckets([][]rdd.Row{{"a0"}, {"b0"}}))
	tr.putOutput(dep, 1, 2, wrapBuckets([][]rdd.Row{{"a1"}, {"b1"}}))
	tr.putOutput(dep, 2, 1, wrapBuckets([][]rdd.Row{{"a2"}, {"b2"}}))
	// Reader on node 1: map parts 0 and 2 are local.
	res := tr.fetch(dep, 0, 1)
	if len(res.missing) != 0 {
		t.Fatalf("unexpected missing: %v", res.missing)
	}
	rows := res.materialize().Rows()
	if len(rows) != res.total {
		t.Fatalf("materialized %d rows, total says %d", len(rows), res.total)
	}
	// Concatenation in map-partition order is the determinism contract.
	want := []string{"a0", "a1", "a2"}
	for i, r := range rows {
		if r.(string) != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
	if res.localBytes != 20 || res.remoteBytes != 10 {
		t.Errorf("locality split = %d local / %d remote", res.localBytes, res.remoteBytes)
	}
}

func TestShuffleFetchMissingFails(t *testing.T) {
	tr, dep := shuffleFixture()
	tr.putOutput(dep, 0, 1, wrapBuckets([][]rdd.Row{{"a0"}, {"b0"}}))
	res := tr.fetch(dep, 1, 1)
	if len(res.missing) != 2 {
		t.Fatalf("missing = %v, want [1 2]", res.missing)
	}
	if res.segs != nil || res.total != 0 || res.materialize().Len() != 0 {
		t.Error("failed fetch must not return partial rows")
	}
}

// A single-segment fetch must be copy-free: the materialized slice is
// the stored bucket itself, with capacity pinned so an appending
// consumer cannot clobber tracker state.
func TestShuffleFetchSingleSegmentCopyFree(t *testing.T) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 1, 10, func(part int) []rdd.Row { return nil })
	dep := &rdd.ShuffleDep{P: src, NumOut: 2}
	tr := newShuffleTracker()
	bucket0 := dep.BucketRows([]rdd.Row{rdd.KV{K: 0, V: "a"}, rdd.KV{K: 0, V: "b"}})
	tr.putOutput(dep, 0, 1, wrapBuckets(bucket0))
	res := tr.fetch(dep, rdd.PartitionOf(0, 2), 1)
	rows := res.materialize().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if len(rows) != cap(rows) {
		t.Errorf("single-segment view has spare capacity (%d/%d): appends would alias tracker state", len(rows), cap(rows))
	}
	grown := append(rows, rdd.KV{K: 0, V: "c"})
	_ = grown
	again := tr.fetch(dep, rdd.PartitionOf(0, 2), 1).materialize().Rows()
	if len(again) != 2 {
		t.Fatalf("append through fetched view corrupted the tracker: %v", again)
	}
}

// The cached per-node byte totals must match a brute-force recount over
// every stored output, across puts, overwrites and node drops.
func TestShuffleNodeBytesMatchesRecount(t *testing.T) {
	c := rdd.NewContext(2)
	srcA := c.Parallelize("a", 4, 10, func(part int) []rdd.Row { return nil })
	srcB := c.Parallelize("b", 3, 7, func(part int) []rdd.Row { return nil })
	depA := &rdd.ShuffleDep{P: srcA, NumOut: 2}
	depB := &rdd.ShuffleDep{P: srcB, NumOut: 3}
	tr := newShuffleTracker()

	recount := func(nodeID int) int64 {
		var total int64
		for _, st := range tr.states {
			for _, o := range st.outputs {
				if o != nil && o.nodeID == nodeID {
					for _, s := range o.sizes {
						total += s
					}
				}
			}
		}
		return total
	}
	check := func(step string) {
		t.Helper()
		for node := 0; node <= 3; node++ {
			if got, want := tr.nodeBytes(node), recount(node); got != want {
				t.Fatalf("%s: nodeBytes(%d) = %d, brute force = %d", step, node, got, want)
			}
		}
	}

	tr.putOutput(depA, 0, 1, wrapBuckets([][]rdd.Row{{1, 2}, {3}}))
	tr.putOutput(depA, 1, 2, wrapBuckets([][]rdd.Row{{4}, nil}))
	tr.putOutput(depB, 0, 1, wrapBuckets([][]rdd.Row{{5}, {6}, {7}}))
	tr.putOutput(depB, 2, 3, wrapBuckets([][]rdd.Row{nil, {8, 9}, nil}))
	check("after puts")

	// Recomputation overwrites map part 0 of depA on a different node.
	tr.putOutput(depA, 0, 3, wrapBuckets([][]rdd.Row{{1}, {2, 3, 4}}))
	check("after overwrite")

	// Revocation drops node 1; its outputs vanish from both shuffles.
	tr.dropNode(1)
	check("after dropNode")

	// Recovery re-registers the lost outputs elsewhere.
	tr.putOutput(depB, 0, 2, wrapBuckets([][]rdd.Row{{5}, {6}, {7}}))
	tr.putOutput(depA, 2, 2, wrapBuckets([][]rdd.Row{{10, 11, 12}, {13}}))
	check("after recovery")
}

func TestShuffleDropNode(t *testing.T) {
	tr, dep := shuffleFixture()
	tr.putOutput(dep, 0, 1, wrapBuckets([][]rdd.Row{{"a0"}, nil}))
	tr.putOutput(dep, 1, 2, wrapBuckets([][]rdd.Row{{"a1"}, nil}))
	tr.putOutput(dep, 2, 1, wrapBuckets([][]rdd.Row{{"a2"}, nil}))
	tr.dropNode(1)
	st := tr.state(dep)
	if got := st.missingParts(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("missing after drop = %v", got)
	}
	if tr.nodeBytes(1) != 0 {
		t.Error("dropped node still has bytes")
	}
	if tr.nodeBytes(2) == 0 {
		t.Error("surviving node lost its bytes")
	}
}

func TestShuffleNodeBytes(t *testing.T) {
	tr, dep := shuffleFixture()
	tr.putOutput(dep, 0, 1, wrapBuckets([][]rdd.Row{{"x", "y"}, {"z"}}))
	// 3 rows × 10 bytes (src RowBytes).
	if got := tr.nodeBytes(1); got != 30 {
		t.Fatalf("nodeBytes = %d, want 30", got)
	}
	if tr.nodeBytes(99) != 0 {
		t.Error("unknown node should have 0 bytes")
	}
}

func TestExplicitCheckpointRequest(t *testing.T) {
	// RDD.Checkpoint() must write durable partitions even with no policy
	// installed (Spark API parity).
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 2, 128, func(part int) []rdd.Row {
		return []rdd.Row{part * 10, part*10 + 1}
	}).Checkpoint()
	tb := MustTestbed(TestbedOpts{Nodes: 2})
	if _, err := tb.Engine.RunJob(src, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunUntil(tb.Clock.Now() + 600)
	for p := 0; p < 2; p++ {
		if !tb.Store.Has(checkpointKey(src, p)) {
			t.Fatalf("partition %d not checkpointed despite explicit request", p)
		}
	}
	// Recovery after total loss reads the checkpoints.
	tb.RevokeNodes(tb.Clock.Now()+1, 2, true)
	tb.Clock.RunUntil(tb.Clock.Now() + 300)
	res, err := tb.Engine.RunJob(src.Map("m", func(r rdd.Row) rdd.Row { return r }), ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CheckpointReads != 2 {
		t.Errorf("checkpoint reads = %d, want 2", res.Stats.CheckpointReads)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
