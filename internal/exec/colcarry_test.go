package exec

// Round trips of the column-carrying planes: cache put/get, shuffle
// fetch-materialize vs the row plane, and checkpoint write/restore
// through a live engine, each asserted value-identical whichever plane
// carried the partition.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"flint/internal/rdd"
	"flint/internal/simclock"
)

func typedKVRows(n, keys int, seed int64) []rdd.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]rdd.Row, n)
	for i := range rows {
		rows[i] = rdd.KV{K: rng.Intn(keys), V: rng.Intn(1000)}
	}
	return rows
}

// Cache round trip: a typed batch stored and read back must box to the
// original rows, through both get and peek, surviving a demotion to the
// disk tier.
func TestCacheColumnBatchRoundTrip(t *testing.T) {
	rows := typedKVRows(500, 40, 0x0c01)
	b := rdd.ExtractBatch(rows, true)
	if !b.HasCols() {
		t.Fatal("fixture rows should extract to a typed batch")
	}
	c := newBlockCache(1000, 10000)
	k := blockKey{rddID: 1, part: 0}
	c.put(k, b, 600)
	got, ok := c.get(k)
	if !ok || !reflect.DeepEqual(got.data.Rows(), rows) {
		t.Fatal("cache get did not round-trip the typed batch")
	}
	// Force a demotion: the block must survive tier movement intact.
	c.put(blockKey{rddID: 2, part: 0}, rdd.WrapRows(rows[:10]), 900)
	got, ok = c.peek(k)
	if !ok || got.where != tierDisk {
		t.Fatal("expected the typed batch demoted to disk")
	}
	if !reflect.DeepEqual(got.data.Rows(), rows) {
		t.Fatal("demoted batch no longer boxes to the original rows")
	}
}

// Shuffle round trip: typed batch buckets registered, fetched and
// materialized must equal the row plane's concatenation, and the typed
// column layout must survive the fetch (egress-only boxing).
func TestShuffleFetchMaterializeBatchVsRows(t *testing.T) {
	tr, dep := shuffleFixture()
	trRows, _ := shuffleFixture()
	for mapPart := 0; mapPart < 3; mapPart++ {
		rows := typedKVRows(400, 64, int64(mapPart)+7)
		rowBuckets := dep.BucketRows(rows)
		tr.putOutput(dep, mapPart, 1, dep.BucketBatch(rdd.ExtractBatch(rows, true)))
		trRows.putOutput(dep, mapPart, 1, wrapBuckets(rowBuckets))
	}
	for part := 0; part < dep.NumOut; part++ {
		got := tr.fetch(dep, part, 1).materialize()
		want := trRows.fetch(dep, part, 1).materialize().Rows()
		if !got.HasCols() {
			t.Fatalf("part %d: typed segments lost their columns through fetch", part)
		}
		if !reflect.DeepEqual(got.Rows(), want) {
			t.Fatalf("part %d: batch materialize differs from row materialize", part)
		}
	}
}

// Engine round trip: a caching + checkpointing + revoking run must
// produce identical results and stats with column carry on and off —
// the carry plane changes the partition representation, never the
// values, sizes or schedule.
func TestEngineColumnCarryOnOffIdentical(t *testing.T) {
	build := func() *rdd.RDD {
		c := rdd.NewContext(4)
		src := c.Parallelize("src", 4, 16, func(part int) []rdd.Row {
			return typedKVRows(3000, 200, int64(part)+101)
		})
		red := src.ReduceByKeyInt("sum", 4, func(a, b int) int { return a + b }).Persist()
		grp := src.GroupByKey("grp", 4)
		return red.Join("join", grp, 4)
	}
	type outcome struct {
		rows  string
		stats JobStats
	}
	run := func() outcome {
		target := build()
		tb := MustTestbed(TestbedOpts{Nodes: 5, Policy: &alwaysCheckpoint{}})
		tb.RevokeNodes(30, 2, true)
		res, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{rows: fmt.Sprintf("%#v", res.Rows), stats: res.Stats}
	}
	on := run()
	rdd.SetColumnCarry(false)
	defer rdd.SetColumnCarry(true)
	off := run()
	if on.rows != off.rows {
		t.Fatal("collected rows differ carry on vs off")
	}
	if !reflect.DeepEqual(on.stats, off.stats) {
		t.Fatalf("job stats differ carry on vs off:\non  %+v\noff %+v", on.stats, off.stats)
	}
	if off.stats.CheckpointReads == 0 && off.stats.CheckpointTasks == 0 {
		t.Fatal("fixture never checkpointed; the round trip proved nothing")
	}
}

// Checkpoint restore must hand back the written batch: after revocation
// wipes the cache, a persisted-and-checkpointed RDD's partitions come
// back from the store byte-identical to a fresh computation.
func TestCheckpointWriteRestoreRoundTrip(t *testing.T) {
	build := func() (*rdd.RDD, *rdd.RDD) {
		c := rdd.NewContext(4)
		src := c.Parallelize("src", 4, 16, func(part int) []rdd.Row {
			return typedKVRows(2000, 80, int64(part)+11)
		})
		red := src.ReduceByKeyInt("sum", 4, func(a, b int) int { return a + b }).Persist()
		derived := red.MapValues("inc", func(v rdd.Row) rdd.Row { return v.(int) + 1 })
		return red, derived
	}
	red, derived := build()
	want := rdd.CollectLocal(derived)

	tb := MustTestbed(TestbedOpts{Nodes: 4, Policy: &alwaysCheckpoint{}})
	if _, err := tb.Engine.RunJob(red, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Let the async checkpoint tasks drain, then revoke every original
	// node: cached blocks are gone, so the second job can only succeed
	// by reading the checkpointed batches back from the store.
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	tb.RevokeNodes(tb.Clock.Now()+1, 4, true)
	tb.Clock.RunUntil(tb.Clock.Now() + 600)
	res, err := tb.Engine.RunJob(derived, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CheckpointReads == 0 {
		t.Fatal("restore run never read a checkpoint")
	}
	if fmt.Sprintf("%#v", res.Rows) != fmt.Sprintf("%#v", want) {
		t.Fatal("restored results differ from local evaluation")
	}
}
