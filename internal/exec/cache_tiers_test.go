package exec

import (
	"fmt"
	"testing"
)

// Tier-transition coverage for blockCache: demotion order out of the
// memory tier, eviction order out of the disk tier, and the exact
// sequencing of onEvict callbacks when a single put cascades through
// both tiers.

// evictEvent records one onEvict callback.
type evictEvent struct {
	key     blockKey
	bytes   int64
	demoted bool
}

func recordEvictions(c *blockCache) *[]evictEvent {
	events := &[]evictEvent{}
	c.onEvict = func(k blockKey, bytes int64, demoted bool) {
		*events = append(*events, evictEvent{k, bytes, demoted})
	}
	return events
}

// TestBlockCacheMemDemotionOrder checks that memory blocks demote to
// disk strictly in LRU order, with get() refreshing recency.
func TestBlockCacheMemDemotionOrder(t *testing.T) {
	c := newBlockCache(300, 1000)
	ev := recordEvictions(c)
	c.put(blockKey{1, 0}, nil, 100)
	c.put(blockKey{1, 1}, nil, 100)
	c.put(blockKey{1, 2}, nil, 100)
	// Recency now 2 > 1 > 0; reading 0 makes it 0 > 2 > 1.
	c.get(blockKey{1, 0})
	// Two more puts must demote 1 first, then 2 — never 0.
	c.put(blockKey{1, 3}, nil, 100)
	c.put(blockKey{1, 4}, nil, 100)
	want := []evictEvent{
		{blockKey{1, 1}, 100, true},
		{blockKey{1, 2}, 100, true},
	}
	if len(*ev) != len(want) {
		t.Fatalf("evictions = %+v, want %+v", *ev, want)
	}
	for i, e := range *ev {
		if e != want[i] {
			t.Errorf("eviction[%d] = %+v, want %+v", i, e, want[i])
		}
	}
	for _, tc := range []struct {
		part int
		tier tier
	}{{0, tierMem}, {1, tierDisk}, {2, tierDisk}, {3, tierMem}, {4, tierMem}} {
		b, ok := c.peek(blockKey{1, tc.part})
		if !ok || b.where != tc.tier {
			t.Errorf("block %d: ok=%v tier=%v, want tier %v", tc.part, ok, b.where, tc.tier)
		}
	}
}

// TestBlockCacheDiskEvictionOrder checks that the disk tier drops
// blocks in its own LRU order, and that touching a disk-resident block
// via get() protects it from the next eviction.
func TestBlockCacheDiskEvictionOrder(t *testing.T) {
	c := newBlockCache(100, 300)
	ev := recordEvictions(c)
	// Each put displaces the previous block to disk: after the loop the
	// disk holds 0,1,2 (2 most recent) and memory holds 3.
	for p := 0; p < 4; p++ {
		c.put(blockKey{1, p}, nil, 100)
	}
	if got := len(*ev); got != 3 {
		t.Fatalf("expected 3 demotions, saw %+v", *ev)
	}
	*ev = (*ev)[:0]
	// Refresh block 0 on disk; the next disk eviction must take 1.
	c.get(blockKey{1, 0})
	c.put(blockKey{2, 0}, nil, 100) // demotes 3 → disk is full → drops 1
	want := []evictEvent{
		{blockKey{1, 1}, 100, false},
		{blockKey{1, 3}, 100, true},
	}
	if len(*ev) != len(want) {
		t.Fatalf("evictions = %+v, want %+v", *ev, want)
	}
	for i, e := range *ev {
		if e != want[i] {
			t.Errorf("eviction[%d] = %+v, want %+v", i, e, want[i])
		}
	}
	if c.has(blockKey{1, 1}) {
		t.Error("dropped block still present")
	}
	if b, ok := c.peek(blockKey{1, 0}); !ok || b.where != tierDisk {
		t.Error("refreshed disk block should have survived")
	}
}

// TestBlockCacheEvictCallbackSequencing drives a put that cascades
// through both tiers and asserts the callback order: the disk drop
// (making room) fires before the demotion that needed the room.
func TestBlockCacheEvictCallbackSequencing(t *testing.T) {
	c := newBlockCache(100, 100)
	ev := recordEvictions(c)
	c.put(blockKey{1, 0}, nil, 100) // fills memory
	c.put(blockKey{1, 1}, nil, 100) // demotes 0 to disk
	c.put(blockKey{1, 2}, nil, 100) // drops 0 from disk, then demotes 1
	want := []evictEvent{
		{blockKey{1, 0}, 100, true},
		{blockKey{1, 0}, 100, false},
		{blockKey{1, 1}, 100, true},
	}
	if len(*ev) != len(want) {
		t.Fatalf("evictions = %+v, want %+v", *ev, want)
	}
	for i, e := range *ev {
		if e != want[i] {
			t.Errorf("eviction[%d] = %+v, want %+v", i, e, want[i])
		}
	}
	// A block too large for memory but not disk skips the memory tier
	// and evicts from disk only.
	*ev = (*ev)[:0]
	c2 := newBlockCache(50, 200)
	ev2 := recordEvictions(c2)
	c2.put(blockKey{1, 0}, nil, 150) // straight to disk
	c2.put(blockKey{1, 1}, nil, 150) // disk full: drop 0, store 1
	want2 := []evictEvent{{blockKey{1, 0}, 150, false}}
	if len(*ev2) != 1 || (*ev2)[0] != want2[0] {
		t.Fatalf("oversize evictions = %+v, want %+v", *ev2, want2)
	}
	if len(*ev) != 0 {
		t.Error("first cache's callback fired for second cache")
	}
}

// TestBlockCacheTiersUnderChurn runs repeated put/get cycles and checks
// that accounting, tier membership, and the eviction stream stay
// consistent: every block is in exactly one LRU list, usage matches the
// sum of resident bytes, and overwrites never produce evict callbacks
// for the overwritten key itself.
func TestBlockCacheTiersUnderChurn(t *testing.T) {
	c := newBlockCache(300, 250)
	var events []evictEvent
	c.onEvict = func(k blockKey, bytes int64, demoted bool) {
		events = append(events, evictEvent{k, bytes, demoted})
	}
	puts := 0
	for cycle := 0; cycle < 50; cycle++ {
		k := blockKey{1, cycle % 13}
		overwrite := c.has(k)
		before := len(events)
		c.put(k, nil, int64(50+10*(cycle%5)))
		puts++
		for _, e := range events[before:] {
			if overwrite && e.key == k {
				t.Fatalf("cycle %d: overwrite of %v produced evict callback %+v", cycle, k, e)
			}
		}
		// Interleave reads to shuffle recency.
		c.get(blockKey{1, (cycle * 7) % 13})

		var memSum, diskSum int64
		inList := make(map[blockKey]bool)
		for e := c.memLRU.Front(); e != nil; e = e.Next() {
			b := e.Value.(*block)
			if b.where != tierMem {
				t.Fatalf("cycle %d: block %v in memLRU but tier %v", cycle, b.key, b.where)
			}
			memSum += b.bytes
			inList[b.key] = true
		}
		for e := c.diskLRU.Front(); e != nil; e = e.Next() {
			b := e.Value.(*block)
			if b.where != tierDisk {
				t.Fatalf("cycle %d: block %v in diskLRU but tier %v", cycle, b.key, b.where)
			}
			diskSum += b.bytes
			inList[b.key] = true
		}
		mem, disk := c.usage()
		if memSum != mem || diskSum != disk {
			t.Fatalf("cycle %d: usage %d/%d but list sums %d/%d", cycle, mem, disk, memSum, diskSum)
		}
		if mem > c.memCap || disk > c.diskCap {
			t.Fatalf("cycle %d: over capacity %d/%d", cycle, mem, disk)
		}
		if len(inList) != len(c.blocks) {
			t.Fatalf("cycle %d: %d blocks in lists, %d in map", cycle, len(inList), len(c.blocks))
		}
		for k := range c.blocks {
			if !inList[k] {
				t.Fatalf("cycle %d: block %v in map but in no LRU list", cycle, k)
			}
		}
	}
	// Sanity: churn at these sizes must actually have exercised both
	// transition kinds, or the test is vacuous.
	var sawDemote, sawDrop bool
	for _, e := range events {
		if e.demoted {
			sawDemote = true
		} else {
			sawDrop = true
		}
	}
	if !sawDemote || !sawDrop {
		t.Fatalf("churn exercised demote=%v drop=%v; want both (events: %s)",
			sawDemote, sawDrop, fmt.Sprint(len(events)))
	}
}
