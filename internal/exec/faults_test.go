package exec

import (
	"testing"

	"flint/internal/dfs"
	"flint/internal/obs"
	"flint/internal/rdd"
	"flint/internal/simclock"
)

// scriptedInjector is a FaultInjector built from optional closures; nil
// hooks never fire.
type scriptedInjector struct {
	ckpt  func(rddID, part, attempt int, now float64) bool
	fetch func(src, attempt int, now float64) bool
	slow  func(node int, now float64) float64
}

func (s *scriptedInjector) CkptWriteFails(rddID, part, attempt int, now float64) bool {
	return s.ckpt != nil && s.ckpt(rddID, part, attempt, now)
}

func (s *scriptedInjector) FetchFails(src, attempt int, now float64) bool {
	return s.fetch != nil && s.fetch(src, attempt, now)
}

func (s *scriptedInjector) Slowdown(node int, now float64) float64 {
	if s.slow == nil {
		return 1
	}
	return s.slow(node, now)
}

// failureCountingPolicy checkpoints everything and records abandoned
// writes (FailureAwarePolicy).
type failureCountingPolicy struct {
	alwaysCheckpoint
	failed int
}

func (p *failureCountingPolicy) NotifyCheckpointFailed(r *rdd.RDD, part, attempts int, now float64) {
	p.failed++
}

func ckptTestRDD(c *rdd.Context) *rdd.RDD {
	src := c.Parallelize("src", 4, 1024, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 50; i++ {
			out = append(out, part*50+i)
		}
		return out
	})
	return src.Map("m", func(x rdd.Row) rdd.Row { return x.(int) * 3 })
}

func TestCheckpointWriteRetriesThenSucceeds(t *testing.T) {
	c := rdd.NewContext(4)
	derived := ckptTestRDD(c)
	pol := &failureCountingPolicy{}
	bundle := obs.New(obs.Options{Disabled: true, RingCapacity: 1})
	tb := MustTestbed(TestbedOpts{Nodes: 4, Policy: pol, Obs: bundle})
	// Every write fails twice, then succeeds on the third of the four
	// allowed attempts.
	tb.Engine.SetFaultInjector(&scriptedInjector{
		ckpt: func(rddID, part, attempt int, now float64) bool { return attempt <= 2 },
	})
	if _, err := tb.Engine.RunJob(derived, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	// The policy checkpoints both pipelined RDDs (source + derived), so 8
	// partition writes land, each after two failed attempts.
	if pol.done != 8 {
		t.Fatalf("checkpoints completed = %d, want 8", pol.done)
	}
	if pol.failed != 0 {
		t.Fatalf("writes abandoned = %d, want 0", pol.failed)
	}
	for p := 0; p < 4; p++ {
		if !tb.Store.Has(dfs.Key(derived.ID, p)) {
			t.Fatalf("partition %d missing from store; keys: %v", p, tb.Store.Keys(""))
		}
	}
	if got := bundle.ChaosCkptWriteFailures.Value(); got != 16 {
		t.Errorf("injected write failures = %d, want 16 (2 per write)", got)
	}
	if got := bundle.RetryAttempts.Value(); got != 16 {
		t.Errorf("retry attempts = %d, want 16", got)
	}
	if got := bundle.RetryExhausted.Value(); got != 0 {
		t.Errorf("retry exhaustions = %d, want 0", got)
	}
	if len(tb.Engine.pendingCkpt) != 0 {
		t.Errorf("pendingCkpt not drained: %v", tb.Engine.pendingCkpt)
	}
	if err := tb.Engine.Audit(); err != nil {
		t.Errorf("audit after retries: %v", err)
	}
}

func TestCheckpointWriteRetryExhausts(t *testing.T) {
	c := rdd.NewContext(4)
	derived := ckptTestRDD(c)
	pol := &failureCountingPolicy{}
	bundle := obs.New(obs.Options{Disabled: true, RingCapacity: 1})
	tb := MustTestbed(TestbedOpts{Nodes: 4, Policy: pol, Obs: bundle})
	tb.Engine.SetFaultInjector(&scriptedInjector{
		ckpt: func(rddID, part, attempt int, now float64) bool { return true },
	})
	res, err := tb.Engine.RunJob(derived, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d, want 200 (job must survive abandoned checkpoints)", len(res.Rows))
	}
	if pol.done != 0 {
		t.Fatalf("checkpoints completed = %d, want 0", pol.done)
	}
	if pol.failed != 8 {
		t.Fatalf("abandoned-write notifications = %d, want 8 (both pipelined RDDs)", pol.failed)
	}
	if got := bundle.RetryExhausted.Value(); got != 8 {
		t.Errorf("retry exhaustions = %d, want 8", got)
	}
	if keys := tb.Store.Keys("rdd/"); len(keys) != 0 {
		t.Errorf("store should hold no checkpoints, has %v", keys)
	}
	if len(tb.Engine.pendingCkpt) != 0 {
		t.Errorf("pendingCkpt not drained: %v", tb.Engine.pendingCkpt)
	}
}

func TestFetchRetryChargesBackoffAndSucceeds(t *testing.T) {
	run := func(inj FaultInjector) (map[int]int, float64, *obs.Obs) {
		c := rdd.NewContext(4)
		target := pipeline(c, 2000, 4)
		bundle := obs.New(obs.Options{Disabled: true, RingCapacity: 1})
		tb := MustTestbed(TestbedOpts{Nodes: 5, Obs: bundle})
		tb.Engine.SetFaultInjector(inj)
		res, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatal(err)
		}
		return asKVMap(t, res.Rows), res.Latency(), bundle
	}

	want, baseLatency, _ := run(nil)
	// Every remote fetch fails twice before succeeding; the two backoff
	// waits (2 s + 4 s) are charged into the task's virtual duration.
	got, faultLatency, bundle := run(&scriptedInjector{
		fetch: func(src, attempt int, now float64) bool { return attempt <= 2 },
	})
	if !mapsEqual(want, got) {
		t.Fatalf("fetch retries changed the result: %v vs %v", got, want)
	}
	if faultLatency <= baseLatency {
		t.Errorf("backoff not charged: faulty %.2fs <= clean %.2fs", faultLatency, baseLatency)
	}
	if bundle.ChaosFetchFailures.Value() == 0 {
		t.Error("no injected fetch failures recorded")
	}
	if bundle.RetryAttempts.Value() == 0 {
		t.Error("no retry attempts recorded")
	}
	if bundle.RetryExhausted.Value() != 0 {
		t.Errorf("retry exhaustions = %d, want 0", bundle.RetryExhausted.Value())
	}
}

func TestFetchRetryExhaustionRecomputesParents(t *testing.T) {
	c := rdd.NewContext(4)
	target := pipeline(c, 2000, 4)
	cLocal := rdd.NewContext(4)
	want := asKVMap(t, rdd.CollectLocal(pipeline(cLocal, 2000, 4)))

	bundle := obs.New(obs.Options{Disabled: true, RingCapacity: 1})
	tb := MustTestbed(TestbedOpts{Nodes: 5, Obs: bundle})
	// Every remote fetch fails unconditionally while the window is open:
	// retries exhaust, the poisoned sources are dropped, and the parent
	// stage recomputes. Progress resumes once the window closes.
	tb.Engine.SetFaultInjector(&scriptedInjector{
		fetch: func(src, attempt int, now float64) bool { return now < 120 },
	})
	res, err := tb.Engine.RunJob(target, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if got := asKVMap(t, res.Rows); !mapsEqual(want, got) {
		t.Fatalf("result diverged after recomputation: %v vs %v", got, want)
	}
	if bundle.RetryExhausted.Value() == 0 {
		t.Error("expected at least one exhausted fetch-retry sequence")
	}
	if bundle.Recomputed.Value() == 0 {
		t.Error("exhausted fetches must force lineage recomputation")
	}
	if err := tb.Engine.Audit(); err != nil {
		t.Errorf("audit after forced recomputation: %v", err)
	}
	if err := tb.Store.Audit(); err != nil {
		t.Errorf("store audit: %v", err)
	}
}

func TestStragglerSlowdownStretchesMakespan(t *testing.T) {
	run := func(inj FaultInjector) (float64, *obs.Obs) {
		c := rdd.NewContext(4)
		target := pipeline(c, 2000, 4)
		bundle := obs.New(obs.Options{Disabled: true, RingCapacity: 1})
		tb := MustTestbed(TestbedOpts{Nodes: 5, Obs: bundle})
		tb.Engine.SetFaultInjector(inj)
		res, err := tb.Engine.RunJob(target, ActionMaterialize)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency(), bundle
	}
	base, _ := run(nil)
	slow, bundle := run(&scriptedInjector{
		slow: func(node int, now float64) float64 { return 4 },
	})
	if slow < 2*base {
		t.Errorf("uniform 4x straggler stretched makespan only %.2fs -> %.2fs", base, slow)
	}
	if bundle.ChaosSlowdowns.Value() == 0 {
		t.Error("no slowed tasks recorded")
	}
}

func TestInertInjectorMatchesNilInjector(t *testing.T) {
	run := func(inj FaultInjector) float64 {
		c := rdd.NewContext(4)
		target := pipeline(c, 2000, 4)
		tb := MustTestbed(TestbedOpts{Nodes: 5})
		tb.Engine.SetFaultInjector(inj)
		res, err := tb.Engine.RunJob(target, ActionMaterialize)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency()
	}
	if a, b := run(nil), run(&scriptedInjector{}); a != b {
		t.Errorf("inert injector changed virtual latency: %.6f vs %.6f", a, b)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BackoffBase: 2, BackoffMax: 10}
	for _, tc := range []struct {
		attempt int
		want    float64
	}{{1, 2}, {2, 4}, {3, 8}, {4, 10}, {5, 10}} {
		if got := p.backoff(tc.attempt); got != tc.want {
			t.Errorf("backoff(%d) = %g, want %g", tc.attempt, got, tc.want)
		}
	}
	d := RetryPolicy{}.withDefaults()
	if d != DefaultRetryPolicy() {
		t.Errorf("withDefaults() = %+v, want %+v", d, DefaultRetryPolicy())
	}
}

func mapsEqual(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
