package exec

import "flint/internal/rdd"

// FaultInjector is the narrow hook through which a chaos schedule
// (internal/chaos) injects failures into the engine. All methods must be
// pure functions of their arguments — they are consulted on worker
// goroutines during a dispatch round, when the virtual clock is frozen,
// so any hidden state would break the determinism contract (workers.go).
// A nil injector costs one pointer comparison per potential fault site.
type FaultInjector interface {
	// CkptWriteFails reports whether the attempt-th write of checkpoint
	// (rddID, part) fails at virtual time now. Attempts count from 1.
	CkptWriteFails(rddID, part, attempt int, now float64) bool
	// FetchFails reports whether a shuffle fetch from srcNode fails on
	// the attempt-th try at virtual time now.
	FetchFails(srcNode, attempt int, now float64) bool
	// Slowdown returns the straggler multiplier (>1 slows, 1 = none)
	// for tasks running on node at virtual time now.
	Slowdown(node int, now float64) float64
}

// InvokeFaultInjector is optionally implemented by a FaultInjector that
// wants to perturb function-backend launches (fn mode only; see
// backend.go). Both methods are consulted on the simulation thread at
// task assignment and must be pure functions of their arguments.
type InvokeFaultInjector interface {
	// InvokeFails reports whether the attempt-th invocation admission on
	// node fails at virtual time now. The engine retries with bounded
	// virtual-clock backoff and the final attempt always lands, so
	// injected failures stretch latency without changing outcomes.
	InvokeFails(node, attempt int, now float64) bool
	// ColdStartSlowdown returns the cold-start stretch factor (>1 slows,
	// 1 = none) for a cold launch on node at virtual time now.
	ColdStartSlowdown(node int, now float64) float64
}

// RetryPolicy bounds the engine's retry-with-backoff behaviour for
// transient checkpoint-write and shuffle-fetch failures. Backoff waits
// are charged on the virtual clock: exponential from BackoffBase,
// doubling per attempt, capped at BackoffMax.
type RetryPolicy struct {
	MaxAttempts int     // total attempts including the first (default 4)
	BackoffBase float64 // virtual seconds before the second attempt (default 2)
	BackoffMax  float64 // backoff ceiling in virtual seconds (default 60)
}

// DefaultRetryPolicy returns the calibrated retry bounds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BackoffBase: 2, BackoffMax: 60}
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = d.BackoffMax
	}
	return p
}

// backoff returns the wait before attempt+1, after `attempt` failures.
func (p RetryPolicy) backoff(attempt int) float64 {
	d := p.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	return d
}

// FailureAwarePolicy is optionally implemented by a CheckpointPolicy that
// wants to observe abandoned checkpoint writes (retry exhaustion), e.g.
// to keep the RDD marked so the next materialization re-offers it.
type FailureAwarePolicy interface {
	NotifyCheckpointFailed(r *rdd.RDD, part, attempts int, now float64)
}

// SetFaultInjector installs (or, with nil, removes) the fault injector.
// Call before submitting jobs; swapping mid-job is not supported.
func (e *Engine) SetFaultInjector(f FaultInjector) { e.faults = f }

// injectedFetchFailure records a shuffle source the task exhausted its
// fetch retries against; at completion the engine drops that node's map
// outputs for the dep (the data is "lost"), so parent-stage resubmission
// makes progress instead of refetching the same poisoned outputs.
type injectedFetchFailure struct {
	dep  *rdd.ShuffleDep
	node int
}
