package exec

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"flint/internal/obs"
	"flint/internal/rdd"
	"flint/internal/simclock"
)

// pipeline builds a representative two-shuffle program:
// ints → filter → map to KV → reduceByKey → mapValues → reduceByKey.
func pipeline(c *rdd.Context, n, parts int) *rdd.RDD {
	src := c.Parallelize("ints", parts, 16, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := part; i < n; i += parts {
			out = append(out, i)
		}
		return out
	})
	return src.
		Filter("odd", func(x rdd.Row) bool { return x.(int)%2 == 1 }).
		Map("kv", func(x rdd.Row) rdd.Row { return rdd.KV{K: x.(int) % 20, V: x.(int)} }).
		ReduceByKey("sum", parts, func(a, b rdd.Row) rdd.Row { return a.(int) + b.(int) }).
		MapValues("half", func(v rdd.Row) rdd.Row { return v.(int) / 2 }).
		Map("rekey", func(x rdd.Row) rdd.Row { kv := x.(rdd.KV); return rdd.KV{K: kv.K.(int) % 5, V: kv.V} }).
		ReduceByKey("sum2", parts, func(a, b rdd.Row) rdd.Row { return a.(int) + b.(int) })
}

// asKVMap converts collected KV rows to a map for order-insensitive
// comparison.
func asKVMap(t *testing.T, rows []rdd.Row) map[int]int {
	t.Helper()
	out := map[int]int{}
	for _, r := range rows {
		kv := r.(rdd.KV)
		out[kv.K.(int)] = kv.V.(int)
	}
	return out
}

func TestEngineMatchesLocalEval(t *testing.T) {
	c := rdd.NewContext(4)
	target := pipeline(c, 2000, 4)
	want := asKVMap(t, rdd.CollectLocal(target))

	tb := MustTestbed(TestbedOpts{Nodes: 5})
	res, err := tb.Engine.RunJob(target, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	got := asKVMap(t, res.Rows)
	if len(got) != len(want) {
		t.Fatalf("key counts differ: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: engine %d, local %d", k, got[k], v)
		}
	}
	if res.Latency() <= 0 {
		t.Error("job must take positive virtual time")
	}
	if res.Stats.TasksLaunched == 0 {
		t.Error("no tasks recorded")
	}
}

func TestCountAction(t *testing.T) {
	c := rdd.NewContext(4)
	src := c.Parallelize("ints", 4, 8, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := part; i < 100; i += 4 {
			out = append(out, i)
		}
		return out
	})
	tb := MustTestbed(TestbedOpts{Nodes: 3})
	res, err := tb.Engine.RunJob(src, ActionCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 {
		t.Fatalf("count = %d, want 100", res.Count)
	}
	if res.Rows != nil {
		t.Error("count action should not ship rows")
	}
}

func TestCachingAvoidsRecompute(t *testing.T) {
	c := rdd.NewContext(4)
	genCalls := 0
	src := c.Parallelize("expensive", 4, 1024, func(part int) []rdd.Row {
		genCalls++
		return []rdd.Row{part}
	})
	cached := src.Map("work", func(x rdd.Row) rdd.Row { return x.(int) * 2 }).Persist()

	tb := MustTestbed(TestbedOpts{Nodes: 4})
	if _, err := tb.Engine.RunJob(cached, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	if genCalls != 4 {
		t.Fatalf("first run generated %d partitions, want 4", genCalls)
	}
	r2, err := tb.Engine.RunJob(cached, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if genCalls != 4 {
		t.Fatalf("cached rerun regenerated source (%d calls)", genCalls)
	}
	if r2.Stats.CacheHits == 0 {
		t.Error("second job should hit the cache")
	}
	if tb.Engine.ComputeCount(cached.ID, 0) != 1 {
		t.Errorf("partition computed %d times, want 1", tb.Engine.ComputeCount(cached.ID, 0))
	}
}

func TestRevocationTriggersRecomputation(t *testing.T) {
	c := rdd.NewContext(4)
	src := c.Parallelize("ints", 8, 1024, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 100; i++ {
			out = append(out, part*100+i)
		}
		return out
	})
	cached := src.Map("work", func(x rdd.Row) rdd.Row { return x.(int) + 1 }).Persist()
	tb := MustTestbed(TestbedOpts{Nodes: 4})
	if _, err := tb.Engine.RunJob(cached, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Revoke one node; its cached partitions are lost.
	tb.RevokeNodes(tb.Clock.Now()+10, 1, true)
	tb.Clock.RunUntil(tb.Clock.Now() + 500)

	res, err := tb.Engine.RunJob(cached, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 800 {
		t.Fatalf("rows after revocation = %d, want 800", len(res.Rows))
	}
	if res.Stats.CacheMisses == 0 {
		t.Error("lost partitions should cause cache misses and recomputation")
	}
	if tb.Engine.Snapshot().Revocations != 1 {
		t.Errorf("revocations = %d", tb.Engine.Snapshot().Revocations)
	}
}

func TestShuffleOutputLossCausesMapResubmission(t *testing.T) {
	c := rdd.NewContext(4)
	target := pipeline(c, 1000, 6)
	want := asKVMap(t, rdd.CollectLocal(target))

	tb := MustTestbed(TestbedOpts{Nodes: 6})
	// Revoke three nodes shortly after the job starts: map outputs vanish
	// mid-flight and reduce tasks must fetch-fail and recompute.
	tb.RevokeNodes(5, 3, true)
	res, err := tb.Engine.RunJob(target, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	got := asKVMap(t, res.Rows)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: engine %d, local %d (result corrupted by revocation)", k, got[k], v)
		}
	}
}

func TestRevocationMidJobStillCorrect(t *testing.T) {
	// Sweep revocation instants to catch scheduler states: pending,
	// running, map-done, reduce-running.
	for _, at := range []float64{1, 20, 60, 120, 300} {
		at := at
		t.Run(fmt.Sprintf("at=%v", at), func(t *testing.T) {
			c := rdd.NewContext(4)
			target := pipeline(c, 3000, 8)
			want := asKVMap(t, rdd.CollectLocal(target))
			tb := MustTestbed(TestbedOpts{Nodes: 5})
			tb.RevokeNodes(at, 2, true)
			res, err := tb.Engine.RunJob(target, ActionCollect)
			if err != nil {
				t.Fatal(err)
			}
			got := asKVMap(t, res.Rows)
			if len(got) != len(want) {
				t.Fatalf("key counts: %d vs %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d: %d vs %d", k, got[k], v)
				}
			}
		})
	}
}

func TestRevocationSlowsJobDown(t *testing.T) {
	build := func() *rdd.RDD {
		c := rdd.NewContext(4)
		return pipeline(c, 5000, 8)
	}
	base := MustTestbed(TestbedOpts{Nodes: 5})
	r0, err := base.Engine.RunJob(build(), ActionMaterialize)
	if err != nil {
		t.Fatal(err)
	}
	faulty := MustTestbed(TestbedOpts{Nodes: 5})
	faulty.RevokeNodes(r0.Latency()*0.5, 2, true)
	r1, err := faulty.Engine.RunJob(build(), ActionMaterialize)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency() <= r0.Latency() {
		t.Fatalf("revocation did not slow the job: %.1f vs %.1f", r1.Latency(), r0.Latency())
	}
}

// alwaysCheckpoint is a trivial policy: checkpoint everything.
type alwaysCheckpoint struct{ done int }

func (p *alwaysCheckpoint) ShouldCheckpoint(r *rdd.RDD, now float64) bool { return true }
func (p *alwaysCheckpoint) NotifyStageActive(r *rdd.RDD, now float64)     {}
func (p *alwaysCheckpoint) NotifyStageDone(r *rdd.RDD, now float64)       {}
func (p *alwaysCheckpoint) NotifyCheckpointDone(r *rdd.RDD, part int, bytes int64, wrote float64, now float64) {
	p.done++
}

func TestCheckpointTruncatesRecomputation(t *testing.T) {
	c := rdd.NewContext(4)
	genCalls := 0
	src := c.Parallelize("src", 4, 1024, func(part int) []rdd.Row {
		genCalls++
		var out []rdd.Row
		for i := 0; i < 50; i++ {
			out = append(out, part*50+i)
		}
		return out
	})
	derived := src.Map("m", func(x rdd.Row) rdd.Row { return x.(int) * 3 })

	pol := &alwaysCheckpoint{}
	tb := MustTestbed(TestbedOpts{Nodes: 4, Policy: pol})
	if _, err := tb.Engine.RunJob(derived, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Let the async checkpoint tasks drain.
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	if pol.done == 0 {
		t.Fatal("no checkpoints written")
	}
	if !tb.Store.Has("rdd/2/part/0") {
		t.Fatalf("derived RDD not in store; keys: %v", tb.Store.Keys(""))
	}
	genCalls = 0
	// Revoke everything (wiping all caches), then recompute: the engine
	// must restore from checkpoints without touching the source.
	tb.RevokeNodes(tb.Clock.Now()+1, 4, true)
	tb.Clock.RunUntil(tb.Clock.Now() + 600)
	res, err := tb.Engine.RunJob(derived, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if genCalls != 0 {
		t.Fatalf("source regenerated %d times despite checkpoints", genCalls)
	}
	if res.Stats.CheckpointReads == 0 {
		t.Error("recovery should read checkpoints")
	}
	if len(res.Rows) != 200 {
		t.Fatalf("restored rows = %d, want 200", len(res.Rows))
	}
}

func TestCheckpointTasksAreCounted(t *testing.T) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 2, 4096, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 100; i++ {
			out = append(out, i)
		}
		return out
	})
	pol := &alwaysCheckpoint{}
	tb := MustTestbed(TestbedOpts{Nodes: 2, Policy: pol})
	res, err := tb.Engine.RunJob(src, ActionMaterialize)
	if err != nil {
		t.Fatal(err)
	}
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	if res.Stats.CheckpointTasks != 2 {
		t.Errorf("job checkpoint tasks = %d, want 2", res.Stats.CheckpointTasks)
	}
	if tb.Engine.Snapshot().CheckpointTasks != 2 {
		t.Errorf("engine checkpoint tasks = %d, want 2", tb.Engine.Snapshot().CheckpointTasks)
	}
	if tb.Engine.Snapshot().CheckpointBytes == 0 || tb.Engine.Snapshot().CkptSeconds == 0 {
		t.Error("checkpoint volume/time not recorded")
	}
}

func TestSystemLevelCheckpointBaseline(t *testing.T) {
	c := rdd.NewContext(4)
	cached := c.Parallelize("src", 8, 1<<20, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 64; i++ { // 64 MB per partition
			out = append(out, i)
		}
		return out
	}).Map("m", func(x rdd.Row) rdd.Row { return x }).Persist()

	cfg := DefaultConfig()
	cfg.SystemCheckpointInterval = 5
	tb := MustTestbed(TestbedOpts{Nodes: 4, Engine: cfg})
	if _, err := tb.Engine.RunJob(cached, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Run a long second job so system checkpoints fire against a warm
	// cache while work is in flight.
	slow := cached.Map("m2", func(x rdd.Row) rdd.Row { return x }).WithWeight(50)
	if _, err := tb.Engine.RunJob(slow, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Drain the in-flight system checkpoint writes.
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	if tb.Engine.Snapshot().SystemCkptTasks == 0 {
		t.Fatal("system-level checkpoint tasks never ran")
	}
}

func TestMemoryPressureSpillsToDisk(t *testing.T) {
	// 8 partitions × 64 MB = 512 MB cached on one node with 128 MB of
	// memory: most blocks spill to the disk tier but remain readable.
	c := rdd.NewContext(4)
	cached := c.Parallelize("big", 8, 1<<20, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 64; i++ {
			out = append(out, i)
		}
		return out
	}).Map("id", func(x rdd.Row) rdd.Row { return x }).Persist()

	tb := MustTestbed(TestbedOpts{Nodes: 1, MemBytes: 128 << 20, DiskBytes: 4 << 30})
	if _, err := tb.Engine.RunJob(cached, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	mem, disk := tb.Engine.CachedBytes()
	if mem > 128<<20 {
		t.Fatalf("memory tier over capacity: %d", mem)
	}
	if disk == 0 {
		t.Fatal("nothing spilled to disk despite memory pressure")
	}
	// Re-reading everything must still hit the cache, slower.
	res, err := tb.Engine.RunJob(cached, ActionCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 8*64 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.Stats.CacheHits == 0 {
		t.Error("spilled blocks should still be cache hits")
	}
}

func TestDeadlockWithoutNodesReportsError(t *testing.T) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 2, 8, func(part int) []rdd.Row { return []rdd.Row{part} })
	tb := MustTestbed(TestbedOpts{Nodes: 2})
	// Remove both nodes with no replacement before submitting: the job
	// can never run.
	for _, n := range tb.Cluster.LiveNodes() {
		if err := tb.Cluster.RevokeNow(n.ID, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Engine.RunJob(src, ActionCollect); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, []rdd.Row) {
		c := rdd.NewContext(4)
		target := pipeline(c, 2000, 6)
		tb := MustTestbed(TestbedOpts{Nodes: 5})
		tb.RevokeNodes(30, 2, true)
		res, err := tb.Engine.RunJob(target, ActionCollect)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency(), res.Rows
	}
	l1, r1 := run()
	l2, r2 := run()
	if l1 != l2 {
		t.Fatalf("latencies differ across identical runs: %v vs %v", l1, l2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	key := func(r rdd.Row) string { kv := r.(rdd.KV); return fmt.Sprint(kv.K, "=", kv.V) }
	a := make([]string, len(r1))
	b := make([]string, len(r2))
	for i := range r1 {
		a[i], b[i] = key(r1[i]), key(r2[i])
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("row contents differ across identical runs")
		}
	}
}

// workersScenarioResult is everything observable about one fixed-seed
// run: delivered rows (in delivery order), job stats, engine counters,
// the full trace event sequence, and the deterministic metric snapshot.
type workersScenarioResult struct {
	rows   []rdd.Row
	stats  JobStats
	snap   Metrics
	events []obs.Event
	prom   string
}

// heavyPipeline is the two-shuffle program with task weights large
// enough (~10 s of virtual compute per source partition) that a
// revocation a few seconds in always catches a dispatch round's tasks
// mid-flight.
func heavyPipeline(c *rdd.Context, n, parts int) *rdd.RDD {
	src := c.Parallelize("ints", parts, 1<<20, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := part; i < n; i += parts {
			out = append(out, i)
		}
		return out
	}).WithWeight(8)
	return src.
		Filter("odd", func(x rdd.Row) bool { return x.(int)%2 == 1 }).
		Map("kv", func(x rdd.Row) rdd.Row { return rdd.KV{K: x.(int) % 20, V: x.(int)} }).
		ReduceByKey("sum", parts, func(a, b rdd.Row) rdd.Row { return a.(int) + b.(int) }).
		Map("rekey", func(x rdd.Row) rdd.Row { kv := x.(rdd.KV); return rdd.KV{K: kv.K.(int) % 5, V: kv.V} }).
		ReduceByKey("sum2", parts, func(a, b rdd.Row) rdd.Row { return a.(int) + b.(int) })
}

// runWorkersScenario executes the canonical determinism scenario —
// a two-shuffle pipeline racing two replacement revocations with an
// always-checkpoint policy — at the given worker-pool width.
func runWorkersScenario(t *testing.T, workers int) workersScenarioResult {
	t.Helper()
	c := rdd.NewContext(4)
	target := heavyPipeline(c, 3000, 8)
	bundle := obs.New(obs.Options{RingCapacity: 1 << 16})
	tb := MustTestbed(TestbedOpts{
		Nodes: 5, Workers: workers, Policy: &alwaysCheckpoint{}, Obs: bundle,
	})
	if got := tb.Engine.Workers(); workers > 0 && got != workers {
		t.Fatalf("engine workers = %d, want %d", got, workers)
	}
	tb.RevokeNodes(5, 2, true)
	res, err := tb.Engine.RunJob(target, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the asynchronous checkpoint writes.
	tb.Clock.RunUntil(tb.Clock.Now() + simclock.Hour)
	var raw strings.Builder
	if err := bundle.Reg.WritePrometheus(&raw); err != nil {
		t.Fatal(err)
	}
	// Wall-clock metrics (flint_exec_ prefix) legitimately differ across
	// widths and are outside the determinism contract.
	var prom strings.Builder
	for _, line := range strings.Split(raw.String(), "\n") {
		if !strings.Contains(line, "flint_exec_") {
			prom.WriteString(line)
			prom.WriteByte('\n')
		}
	}
	return workersScenarioResult{
		rows:   res.Rows,
		stats:  res.Stats,
		snap:   tb.Engine.Snapshot(),
		events: bundle.Tracer.Events(),
		prom:   prom.String(),
	}
}

// TestWorkersDeterminism is the tentpole acceptance bar: any worker-pool
// width must produce byte-identical rows, stats, engine counters, metric
// snapshots and trace event order to the fully serial engine.
func TestWorkersDeterminism(t *testing.T) {
	base := runWorkersScenario(t, 1)
	if base.snap.TasksKilled == 0 {
		t.Fatal("scenario must kill tasks for the comparison to mean anything")
	}
	for _, w := range []int{2, 4, 8} {
		got := runWorkersScenario(t, w)
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Errorf("workers=%d: delivered rows differ from workers=1", w)
		}
		if got.stats != base.stats {
			t.Errorf("workers=%d: job stats differ:\n  %+v\n  %+v", w, got.stats, base.stats)
		}
		if got.snap != base.snap {
			t.Errorf("workers=%d: engine counters differ:\n  %+v\n  %+v", w, got.snap, base.snap)
		}
		if len(got.events) != len(base.events) {
			t.Fatalf("workers=%d: %d trace events, workers=1 emitted %d", w, len(got.events), len(base.events))
		}
		for i := range base.events {
			if got.events[i] != base.events[i] {
				t.Fatalf("workers=%d: trace event %d differs:\n  %+v\n  %+v", w, i, got.events[i], base.events[i])
			}
		}
		if got.prom != base.prom {
			t.Errorf("workers=%d: metric snapshots differ", w)
		}
	}
}

// TestRevocationRacesParallelRound revokes nodes while their tasks are
// mid-flight in virtual time — after a dispatch round computed their
// effects on workers, before their completion events fire. The killed
// tasks' effects must be discarded (onTaskDone early-returns), the work
// relaunched, and the answer untouched, at every pool width.
func TestRevocationRacesParallelRound(t *testing.T) {
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			c := rdd.NewContext(4)
			src := c.Parallelize("heavy", 16, 1<<20, func(part int) []rdd.Row {
				var out []rdd.Row
				for i := 0; i < 100; i++ {
					out = append(out, rdd.KV{K: part % 5, V: 1})
				}
				return out
			}).WithWeight(20) // ~30 s per task: all in flight at t=5
			target := src.ReduceByKey("sum", 4, func(a, b rdd.Row) rdd.Row {
				return a.(int) + b.(int)
			})
			want := asKVMap(t, rdd.CollectLocal(target))

			tb := MustTestbed(TestbedOpts{Nodes: 4, Workers: w})
			tb.RevokeNodes(5, 2, true)
			res, err := tb.Engine.RunJob(target, ActionCollect)
			if err != nil {
				t.Fatal(err)
			}
			snap := tb.Engine.Snapshot()
			if snap.TasksKilled == 0 {
				t.Fatal("revocation at t=5 should catch launched tasks mid-flight")
			}
			if res.Stats.TasksLaunched <= 16+4 {
				t.Errorf("killed partitions were not relaunched (launched=%d)", res.Stats.TasksLaunched)
			}
			got := asKVMap(t, res.Rows)
			if len(got) != len(want) {
				t.Fatalf("key counts differ: %d vs %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d: engine %d, oracle %d (killed task effects leaked)", k, got[k], v)
				}
			}
		})
	}
}

// TestWorkersConfigResolution pins the Config.Workers contract: explicit
// values win, 1 is serial, 0 falls back to the process default installed
// with SetDefaultWorkers.
func TestWorkersConfigResolution(t *testing.T) {
	tb := MustTestbed(TestbedOpts{Nodes: 1, Workers: 3})
	if got := tb.Engine.Workers(); got != 3 {
		t.Errorf("explicit workers = %d, want 3", got)
	}
	SetDefaultWorkers(5)
	defer SetDefaultWorkers(0)
	tb2 := MustTestbed(TestbedOpts{Nodes: 1})
	if got := tb2.Engine.Workers(); got != 5 {
		t.Errorf("process-default workers = %d, want 5", got)
	}
	tb3 := MustTestbed(TestbedOpts{Nodes: 1, Workers: 1})
	if got := tb3.Engine.Workers(); got != 1 {
		t.Errorf("serial workers = %d, want 1", got)
	}
}

func TestInteractiveSequentialJobs(t *testing.T) {
	c := rdd.NewContext(4)
	table := c.Parallelize("table", 8, 256, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 200; i++ {
			out = append(out, rdd.KV{K: i % 10, V: 1})
		}
		return out
	}).Persist()

	tb := MustTestbed(TestbedOpts{Nodes: 4})
	// Warm the cache.
	if _, err := tb.Engine.RunJob(table, ActionMaterialize); err != nil {
		t.Fatal(err)
	}
	// Issue three queries with think time between them.
	var latencies []float64
	for q := 0; q < 3; q++ {
		query := table.ReduceByKey(fmt.Sprintf("q%d", q), 4, func(a, b rdd.Row) rdd.Row {
			return a.(int) + b.(int)
		})
		res, err := tb.Engine.RunJob(query, ActionCollect)
		if err != nil {
			t.Fatal(err)
		}
		latencies = append(latencies, res.Latency())
		tb.Clock.Advance(60) // user think time
	}
	// Warm-cache queries should be fast and consistent.
	for _, l := range latencies {
		if l > 60 {
			t.Errorf("warm query latency %.1f s too high", l)
		}
	}
}

func TestUnionAndCoalesceOnEngine(t *testing.T) {
	c := rdd.NewContext(4)
	a := c.FromRows("a", 3, 8, []rdd.Row{1, 2, 3})
	b := c.FromRows("b", 2, 8, []rdd.Row{4, 5})
	u := a.Union("u", b).Coalesce("co", 2)
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	tb := MustTestbed(TestbedOpts{Nodes: 2})
	res, err := tb.Engine.RunJob(u, ActionCollect)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !want[r.(int)] {
			t.Fatalf("unexpected row %v", r)
		}
	}
}

func TestReplacementNodeJoinsAndWorks(t *testing.T) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 16, 1<<20, func(part int) []rdd.Row {
		var out []rdd.Row
		for i := 0; i < 100; i++ {
			out = append(out, part)
		}
		return out
	}).WithWeight(20) // ~30 s per task so the job outlives the replacement delay
	tb := MustTestbed(TestbedOpts{Nodes: 2})
	tb.RevokeNodes(1, 1, true)
	res, err := tb.Engine.RunJob(src, ActionCount)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1600 {
		t.Fatalf("count = %d", res.Count)
	}
	if tb.Engine.Snapshot().NodesJoined != 3 { // 2 initial + 1 replacement
		t.Errorf("NodesJoined = %d, want 3", tb.Engine.Snapshot().NodesJoined)
	}
	if tb.Engine.LiveNodeCount() != 2 {
		t.Errorf("live nodes = %d, want 2", tb.Engine.LiveNodeCount())
	}
}

func TestCostModelTimes(t *testing.T) {
	m := CostModel{ComputeRate: 100, NetBW: 50, DiskBW: 25, TaskOverhead: 0.1}
	if got := m.computeTime(200, 1); got != 2 {
		t.Errorf("computeTime = %v", got)
	}
	if got := m.computeTime(200, 2); got != 4 {
		t.Errorf("weighted computeTime = %v", got)
	}
	if got := m.computeTime(200, 0); got != 2 {
		t.Errorf("zero-weight computeTime = %v", got)
	}
	if m.computeTime(0, 1) != 0 || m.netTime(0) != 0 || m.diskTime(-5) != 0 {
		t.Error("zero/negative bytes must cost nothing")
	}
	if m.netTime(100) != 2 || m.diskTime(100) != 4 {
		t.Error("net/disk times wrong")
	}
}
