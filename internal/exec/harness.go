package exec

import (
	"fmt"

	"flint/internal/cluster"
	"flint/internal/dfs"
	"flint/internal/market"
	"flint/internal/obs"
	"flint/internal/simclock"
	"flint/internal/trace"
)

// Testbed assembles a ready-to-run simulated deployment: a virtual clock,
// a market with calm "primary" and "standby" spot pools plus on-demand, a
// cluster manager, a checkpoint store and an engine. It is the standard
// fixture for the systems experiments (Figures 3, 6–9), where revocations
// are injected at controlled instants rather than drawn from price
// traces.
type Testbed struct {
	Clock    *simclock.Clock
	Exchange *market.Exchange
	Cluster  *cluster.Manager
	Store    *dfs.Store
	Engine   *Engine
}

// TestbedOpts configures NewTestbed. Zero values take the defaults noted
// per field.
type TestbedOpts struct {
	Nodes      int   // cluster size (default 10, the paper's testbed)
	Slots      int   // task slots per node (default 2)
	MemBytes   int64 // RDD cache per node (default 6 GB)
	DiskBytes  int64 // local spill disk per node (default 32 GB)
	Policy     CheckpointPolicy
	Engine     Config  // engine config; zero uses DefaultConfig
	Workers    int     // engine worker-pool width (0 = Engine.Workers/process default)
	AcqDelay   float64 // replacement acquisition delay (default 120 s)
	DFS        dfs.Config
	HorizonHrs float64  // flat-trace length (default 10,000 h)
	Obs        *obs.Obs // observability bundle (default obs.Active())
	// Pool selects the market pool the cluster leases from: "primary"
	// (default; cheap flat-price spot with standby fallback) or
	// "on-demand" (never revoked, full price). The frontier sweep uses
	// it to price the on-demand baseline.
	Pool string
	// Backend selects the executor model (Engine.Backend); nil keeps the
	// default VM backend. Pass a fresh serverless.New per testbed —
	// warm-pool and billing state must not leak across runs.
	Backend Backend
}

// NewTestbed builds the fixture. The primary and standby pools have flat
// prices, so no market-driven revocations occur; use RevokeNodes to
// inject failures.
func NewTestbed(opts TestbedOpts) (*Testbed, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 10
	}
	if opts.Slots <= 0 {
		opts.Slots = 2
	}
	if opts.MemBytes <= 0 {
		opts.MemBytes = 6 << 30
	}
	if opts.DiskBytes <= 0 {
		opts.DiskBytes = 32 << 30
	}
	if opts.AcqDelay == 0 {
		opts.AcqDelay = 2 * simclock.Minute
	}
	if opts.HorizonHrs <= 0 {
		opts.HorizonHrs = 10_000
	}
	engCfg := opts.Engine
	if engCfg.MaxEvents == 0 && engCfg.Cost == (CostModel{}) && engCfg.SystemCheckpointInterval == 0 {
		w := engCfg.Workers
		engCfg = DefaultConfig()
		engCfg.Workers = w
	}
	if opts.Workers != 0 {
		engCfg.Workers = opts.Workers
	}
	if opts.Backend != nil {
		engCfg.Backend = opts.Backend
	}
	if opts.Pool == "" {
		opts.Pool = "primary"
	}

	clk := simclock.New()
	flat := func(name string) *market.Pool {
		n := int(opts.HorizonHrs)
		prices := make([]float64, n)
		for i := range prices {
			prices[i] = 0.05
		}
		return &market.Pool{
			Name: name, Kind: market.KindSpot, OnDemand: 0.175,
			Trace: &trace.Trace{Step: simclock.Hour, Prices: prices},
		}
	}
	exch, err := market.NewExchange([]*market.Pool{
		flat("primary"), flat("standby"),
		{Name: "on-demand", Kind: market.KindOnDemand, OnDemand: 0.175},
	}, market.BillPerSecond, 1)
	if err != nil {
		return nil, err
	}

	store := dfs.New(opts.DFS)
	eng := New(clk, store, engCfg, opts.Policy)
	if opts.Obs != nil {
		// Install before Start so initial node-up events are captured.
		exch.SetObs(opts.Obs)
		eng.SetObs(opts.Obs)
	}

	ccfg := cluster.DefaultConfig()
	ccfg.Size = opts.Nodes
	ccfg.NodeSlots = opts.Slots
	ccfg.NodeMemBytes = opts.MemBytes
	ccfg.NodeDiskBytes = opts.DiskBytes
	ccfg.AcquisitionDelay = opts.AcqDelay
	sel := &cluster.FixedSelector{
		PoolName: opts.Pool, Bid: 0.175,
		Fallbacks: []cluster.Request{{Pool: "standby", Bid: 0.175}, {Pool: "primary", Bid: 0.175}},
	}
	if opts.Pool == "on-demand" {
		// On-demand servers are never revoked; fallbacks would reintroduce
		// spot capacity behind the baseline's back.
		sel.Fallbacks = []cluster.Request{{Pool: "on-demand", Bid: 0.175}}
	}
	mgr, err := cluster.New(clk, exch, ccfg, sel, eng.Events())
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		mgr.SetObs(opts.Obs)
	}
	if err := mgr.Start(); err != nil {
		return nil, err
	}
	return &Testbed{Clock: clk, Exchange: exch, Cluster: mgr, Store: store, Engine: eng}, nil
}

// MustTestbed is NewTestbed that panics on error (test/bench convenience).
func MustTestbed(opts TestbedOpts) *Testbed {
	tb, err := NewTestbed(opts)
	if err != nil {
		panic(fmt.Sprintf("exec: testbed: %v", err))
	}
	return tb
}

// RevokeNodes schedules the concurrent revocation of k live nodes at
// virtual time at (the k highest node IDs, so repeated injections hit the
// newest servers deterministically). If replace is true the node manager
// acquires replacements with its usual delay.
func (tb *Testbed) RevokeNodes(at float64, k int, replace bool) {
	tb.Clock.Schedule(at, func() {
		tb.Cluster.RevokeNewest(k, replace)
	})
}
