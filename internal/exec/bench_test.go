package exec

import (
	"fmt"
	"testing"

	"flint/internal/rdd"
)

// Data-plane benchmarks for the shuffle hot paths: the reduce-side fetch
// (run once per reduce task, and again for every post-revocation
// recomputation) and the map-side bucketing pass.

func benchTracker(mapParts, numOut, rowsPerBucket int) (*shuffleTracker, *rdd.ShuffleDep) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", mapParts, 10, func(part int) []rdd.Row { return nil })
	dep := &rdd.ShuffleDep{P: src, NumOut: numOut}
	tr := newShuffleTracker()
	for mp := 0; mp < mapParts; mp++ {
		buckets := make([][]rdd.Row, numOut)
		for b := range buckets {
			rows := make([]rdd.Row, rowsPerBucket)
			for i := range rows {
				rows[i] = rdd.KV{K: mp*rowsPerBucket + i, V: b}
			}
			buckets[b] = rows
		}
		tr.putOutput(dep, mp, mp%4, wrapBuckets(buckets))
	}
	return tr, dep
}

// BenchmarkShuffleFetch measures gathering one reduce partition's bucket
// from every map output and materializing the concatenated row slice.
func BenchmarkShuffleFetch(b *testing.B) {
	cases := []struct {
		name                         string
		mapParts, numOut, rowsPerBkt int
	}{
		{"64maps-16buckets", 64, 16, 64},
		{"256maps-32buckets", 256, 32, 16},
	}
	for _, c := range cases {
		tr, dep := benchTracker(c.mapParts, c.numOut, c.rowsPerBkt)
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got := tr.fetch(dep, i%c.numOut, 0).materialize()
				if got.Len() != c.mapParts*c.rowsPerBkt {
					b.Fatalf("fetched %d rows", got.Len())
				}
			}
		})
	}
}

func benchBucketRows(n int, str bool) []rdd.Row {
	rows := make([]rdd.Row, n)
	for i := range rows {
		if str {
			rows[i] = rdd.KV{K: fmt.Sprintf("key-%06d", (i*2654435761)%4096), V: i}
		} else {
			rows[i] = rdd.KV{K: (i * 2654435761) % 4096, V: i}
		}
	}
	return rows
}

// BenchmarkBucketing measures the map-side split of one partition's rows
// into NumOut shuffle buckets. Base cases run the fused columnar index
// pass; -row variants force the per-row generic Bucket path (the seed
// implementation); -par4 variants chunk the columnar pass across four
// goroutines (the idle-worker recruitment of parbucket.go).
func BenchmarkBucketing(b *testing.B) {
	c := rdd.NewContext(2)
	src := c.Parallelize("src", 1, 10, func(part int) []rdd.Row { return nil })
	for _, tc := range []struct {
		name   string
		numOut int
		str    bool
	}{
		{"int-16buckets", 16, false},
		{"int-64buckets", 64, false},
		{"string-16buckets", 16, true},
	} {
		dep := &rdd.ShuffleDep{P: src, NumOut: tc.numOut}
		rows := benchBucketRows(1<<16, tc.str)
		body := func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buckets := dep.BucketRows(rows)
				if len(buckets[0]) == 0 {
					b.Fatal("empty bucket")
				}
			}
		}
		b.Run(tc.name, body)
		b.Run(tc.name+"-row", func(b *testing.B) {
			rdd.SetColumnar(false)
			defer rdd.SetColumnar(true)
			body(b)
		})
		b.Run(tc.name+"-par4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buckets := parallelBuckets(dep, rows, 4)
				if len(buckets[0]) == 0 {
					b.Fatal("empty bucket")
				}
			}
		})
		// -col scatters the typed key column directly (the carry plane's
		// map-side path); -col-par4 is the same scatter chunked across 4
		// goroutines via the roll-up scheme.
		batch := rdd.ExtractBatch(rows, true)
		b.Run(tc.name+"-col", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buckets := dep.BucketBatch(batch)
				if buckets[0].Len() == 0 {
					b.Fatal("empty bucket")
				}
			}
		})
		b.Run(tc.name+"-col-par4", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buckets := parallelBucketBatch(dep, batch, 4)
				if buckets[0].Len() == 0 {
					b.Fatal("empty bucket")
				}
			}
		})
	}
}
