package cluster

import (
	"testing"

	"flint/internal/simclock"
)

// observingSelector wraps FixedSelector with a PriceObserver that
// records each tick's virtual time.
type observingSelector struct {
	FixedSelector
	ticks []float64
}

func (s *observingSelector) ObservePrices(now float64) { s.ticks = append(s.ticks, now) }

func TestObserveEveryTicksSelector(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	sel := &observingSelector{FixedSelector: FixedSelector{PoolName: "a", Bid: 1}}
	cfg := smallConfig()
	cfg.ObserveEvery = simclock.Hour
	m, err := New(clk, e, cfg, sel, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3*simclock.Hour + 1)
	if len(sel.ticks) != 3 {
		t.Fatalf("got %d observation ticks, want 3 (%v)", len(sel.ticks), sel.ticks)
	}
	for i, at := range sel.ticks {
		if want := float64(i+1) * simclock.Hour; at != want {
			t.Fatalf("tick %d at %g, want %g", i, at, want)
		}
	}
	// Stop must silence further ticks.
	m.Stop()
	clk.Advance(5 * simclock.Hour)
	if len(sel.ticks) != 3 {
		t.Fatalf("ticks continued after Stop: %v", sel.ticks)
	}
}

func TestObserveEveryIgnoredWithoutObserver(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	cfg := smallConfig()
	cfg.ObserveEvery = simclock.Hour
	m, err := New(clk, e, cfg, &FixedSelector{PoolName: "a", Bid: 1}, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(4 * simclock.Hour) // must not panic or loop
	m.Stop()
}
