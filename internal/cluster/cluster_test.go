package cluster

import (
	"math"
	"testing"

	"flint/internal/market"
	"flint/internal/simclock"
	"flint/internal/trace"
)

// twoPoolExchange builds an exchange with pool "a" (spikes at spikeMinA)
// and a calm pool "b", plus on-demand.
func twoPoolExchange(t *testing.T, spikeMinA int) *market.Exchange {
	t.Helper()
	mk := func(name string, spikeAt int) *market.Pool {
		prices := make([]float64, 24*60)
		for i := range prices {
			prices[i] = 0.2
			if spikeAt >= 0 && i >= spikeAt && i < spikeAt+15 {
				prices[i] = 5
			}
		}
		return &market.Pool{
			Name: name, Kind: market.KindSpot, OnDemand: 1.0,
			Trace: &trace.Trace{Step: 60, Prices: prices},
		}
	}
	pools := []*market.Pool{
		mk("a", spikeMinA),
		mk("b", -1),
		{Name: "on-demand", Kind: market.KindOnDemand, OnDemand: 1.0},
	}
	e, err := market.NewExchange(pools, market.BillPerSecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func smallConfig() Config {
	c := DefaultConfig()
	c.Size = 4
	return c
}

func TestStartProvisionsFullCluster(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	var ups int
	m, err := New(clk, e, smallConfig(), &FixedSelector{PoolName: "a", Bid: 1}, Events{
		OnNodeUp: func(n *Node) { ups++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.LiveNodes()); got != 4 {
		t.Fatalf("live nodes = %d, want 4", got)
	}
	if ups != 4 {
		t.Fatalf("OnNodeUp fired %d times, want 4", ups)
	}
	for _, n := range m.LiveNodes() {
		if n.Pool != "a" || n.Slots != 2 || n.MemBytes != 6<<30 {
			t.Errorf("node attrs wrong: %+v", n)
		}
	}
}

func TestRevocationReplacesNodes(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60) // pool a spikes at minute 60
	var warnings, revocations, ups int
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, err := New(clk, e, smallConfig(), sel, Events{
		OnNodeUp:  func(n *Node) { ups++ },
		OnWarning: func(n *Node, at float64) { warnings++ },
		OnRevoked: func(n *Node) { revocations++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * simclock.Hour)
	if revocations != 4 {
		t.Fatalf("revocations = %d, want 4 (simultaneous pool revocation)", revocations)
	}
	if warnings != 4 {
		t.Fatalf("warnings = %d, want 4", warnings)
	}
	live := m.LiveNodes()
	if len(live) != 4 {
		t.Fatalf("cluster size after replacement = %d, want 4", len(live))
	}
	for _, n := range live {
		if n.Pool != "b" {
			t.Errorf("replacement node in pool %q, want b", n.Pool)
		}
	}
	if ups != 8 {
		t.Errorf("OnNodeUp total = %d, want 8", ups)
	}
	if m.RevocationCount != 4 || m.ReplacementCount != 4 || m.WarningCount != 4 {
		t.Errorf("counters = %d/%d/%d", m.RevocationCount, m.ReplacementCount, m.WarningCount)
	}
}

func TestWarningLeadTime(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60)
	var warnAt, revokeAt float64 = -1, -1
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	cfg := smallConfig()
	cfg.Size = 1
	m, _ := New(clk, e, cfg, sel, Events{
		OnWarning: func(n *Node, at float64) {
			if warnAt < 0 {
				warnAt = clk.Now()
			}
		},
		OnRevoked: func(n *Node) {
			if revokeAt < 0 {
				revokeAt = clk.Now()
			}
		},
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(3 * simclock.Hour)
	if revokeAt != 3600 {
		t.Fatalf("revoked at %v, want 3600", revokeAt)
	}
	if math.Abs((revokeAt-warnAt)-2*simclock.Minute) > 1e-9 {
		t.Fatalf("warning lead = %v, want 120s", revokeAt-warnAt)
	}
}

func TestReplacementAcquisitionDelay(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60)
	cfg := smallConfig()
	cfg.Size = 1
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, _ := New(clk, e, cfg, sel, Events{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(3600 + 1) // just past revocation
	if len(m.LiveNodes()) != 0 {
		t.Fatal("replacement should not be up yet")
	}
	if len(m.PendingNodes()) != 1 {
		t.Fatal("replacement should be pending")
	}
	clk.RunUntil(3600 + 2*simclock.Minute)
	if len(m.LiveNodes()) != 1 {
		t.Fatal("replacement should be up after the acquisition delay")
	}
}

func TestNoReplacementWhenDisabled(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60)
	cfg := smallConfig()
	cfg.Replace = false
	m, _ := New(clk, e, cfg, &FixedSelector{PoolName: "a", Bid: 1}, Events{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * simclock.Hour)
	if len(m.LiveNodes()) != 0 || len(m.PendingNodes()) != 0 {
		t.Fatal("revoked nodes must not be replaced when Replace=false")
	}
}

func TestRevokeNowInjection(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	var revoked []int
	m, _ := New(clk, e, smallConfig(), &FixedSelector{PoolName: "a", Bid: 1}, Events{
		OnRevoked: func(n *Node) { revoked = append(revoked, n.ID) },
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	first := m.LiveNodes()[0]
	if err := m.RevokeNow(first.ID, false); err != nil {
		t.Fatal(err)
	}
	if len(m.LiveNodes()) != 3 {
		t.Fatal("node not removed")
	}
	if len(revoked) != 1 || revoked[0] != first.ID {
		t.Fatalf("revoked = %v", revoked)
	}
	if err := m.RevokeNow(first.ID, false); err == nil {
		t.Fatal("double revoke should error")
	}
	// With replacement.
	second := m.LiveNodes()[0]
	if err := m.RevokeNow(second.ID, true); err != nil {
		t.Fatal(err)
	}
	if len(m.PendingNodes()) != 1 {
		t.Fatal("replacement not pending")
	}
}

func TestFallbackToOnDemandWhenAllPoolsSpike(t *testing.T) {
	// Both spot pools spike at minute 60 → replacement must come from
	// on-demand.
	clk := simclock.New()
	mk := func(name string) *market.Pool {
		prices := make([]float64, 24*60)
		for i := range prices {
			prices[i] = 0.2
			if i >= 60 && i < 120 {
				prices[i] = 50
			}
		}
		return &market.Pool{Name: name, Kind: market.KindSpot, OnDemand: 1.0,
			Trace: &trace.Trace{Step: 60, Prices: prices}}
	}
	e, err := market.NewExchange([]*market.Pool{
		mk("a"), mk("b"),
		{Name: "on-demand", Kind: market.KindOnDemand, OnDemand: 1.0},
	}, market.BillPerSecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Size = 2
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, _ := New(clk, e, cfg, sel, Events{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * simclock.Hour)
	live := m.LiveNodes()
	if len(live) != 2 {
		t.Fatalf("live = %d, want 2", len(live))
	}
	for _, n := range live {
		if n.Pool != "on-demand" {
			t.Errorf("node pool = %q, want on-demand fallback", n.Pool)
		}
	}
}

func TestStopReleasesLeases(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	m, _ := New(clk, e, smallConfig(), &FixedSelector{PoolName: "a", Bid: 1}, Events{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(simclock.Hour)
	m.Stop()
	costAtStop := e.TotalCost(clk.Now())
	clk.RunUntil(10 * simclock.Hour)
	if got := e.TotalCost(clk.Now()); math.Abs(got-costAtStop) > 1e-9 {
		t.Fatalf("billing continued after Stop: %v vs %v", got, costAtStop)
	}
	if len(m.LiveNodes()) != 0 {
		t.Fatal("nodes remain after Stop")
	}
	if m.Cost() <= 0 {
		t.Fatal("cost should be positive")
	}
}

func TestNewValidation(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	if _, err := New(clk, e, Config{Size: 0}, &FixedSelector{}, Events{}); err == nil {
		t.Error("zero size should error")
	}
	if _, err := New(clk, e, Config{Size: 1}, nil, Events{}); err == nil {
		t.Error("nil selector should error")
	}
}

func TestStartSelectorCountMismatch(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, -1)
	bad := badSelector{}
	m, _ := New(clk, e, smallConfig(), bad, Events{})
	if err := m.Start(); err == nil {
		t.Error("selector returning wrong count should error")
	}
}

type badSelector struct{}

func (badSelector) Initial(now float64, n int) []Request { return nil }
func (badSelector) Replace(now float64, revokedPool string, exclude []string, n int) []Request {
	return nil
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Size != 10 || c.NodeSlots != 2 {
		t.Errorf("cluster shape = %d × %d slots, want 10 × 2 (r3.large)", c.Size, c.NodeSlots)
	}
	if c.WarningLead != 120 || c.AcquisitionDelay != 120 {
		t.Errorf("timing = %v/%v, want 120/120 s", c.WarningLead, c.AcquisitionDelay)
	}
}
