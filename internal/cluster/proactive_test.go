package cluster

import (
	"testing"

	"flint/internal/simclock"
)

// With proactive replacement, the node manager orders the replacement at
// the two-minute warning, so it comes up at the instant of the
// revocation — the zero-downtime property §4 describes.
func TestProactiveReplaceEliminatesDowntime(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60) // pool a spikes at minute 60
	cfg := smallConfig()
	cfg.Size = 4
	cfg.ProactiveReplace = true
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	var minLive = 99
	m, err := New(clk, e, cfg, sel, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// Sample cluster size at every event boundary through the revocation
	// window.
	for tick := 3000.0; tick <= 5000; tick += 10 {
		clk.RunUntil(tick)
		if n := len(m.LiveNodes()); n < minLive {
			minLive = n
		}
	}
	if minLive < 4 {
		t.Fatalf("proactive replacement left the cluster at %d nodes; want no downtime", minLive)
	}
	if m.ReplacementCount != 4 {
		t.Errorf("replacements = %d, want 4", m.ReplacementCount)
	}
	// No double replacement at the revocation itself.
	clk.RunUntil(3 * simclock.Hour)
	if got := len(m.LiveNodes()); got != 4 {
		t.Fatalf("cluster size = %d, want 4 (double replacement?)", got)
	}
}

// Without the proactive option, the same scenario leaves the cluster
// short-handed for the acquisition delay.
func TestReactiveReplaceHasDowntime(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60)
	cfg := smallConfig()
	cfg.Size = 4
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, err := New(clk, e, cfg, sel, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(3600 + 1)
	if got := len(m.LiveNodes()); got != 0 {
		t.Fatalf("expected downtime window, have %d live nodes", got)
	}
	clk.RunUntil(3600 + 2*simclock.Minute)
	if got := len(m.LiveNodes()); got != 4 {
		t.Fatalf("replacements not up after delay: %d", got)
	}
}

// Warnings must be counted even when no handler is subscribed.
func TestWarningCountWithoutHandler(t *testing.T) {
	clk := simclock.New()
	e := twoPoolExchange(t, 60)
	cfg := smallConfig()
	cfg.Size = 2
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, _ := New(clk, e, cfg, sel, Events{})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * simclock.Hour)
	if m.WarningCount != 2 {
		t.Errorf("WarningCount = %d, want 2", m.WarningCount)
	}
}
