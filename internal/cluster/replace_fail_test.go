package cluster

import (
	"errors"
	"testing"

	"flint/internal/market"
	"flint/internal/simclock"
	"flint/internal/trace"
)

// noOnDemandExchange builds an exchange with only spot pools "a" and "b",
// both spiking to 5 at spikeMin for 15 minutes, and crucially *no*
// on-demand pool — so a replacement during the spike has nowhere to go.
func noOnDemandExchange(t *testing.T, spikeMin int) *market.Exchange {
	t.Helper()
	mk := func(name string) *market.Pool {
		prices := make([]float64, 24*60)
		for i := range prices {
			prices[i] = 0.2
			if i >= spikeMin && i < spikeMin+15 {
				prices[i] = 5
			}
		}
		return &market.Pool{
			Name: name, Kind: market.KindSpot, OnDemand: 1.0,
			Trace: &trace.Trace{Step: 60, Prices: prices},
		}
	}
	e, err := market.NewExchange([]*market.Pool{mk("a"), mk("b")}, market.BillPerSecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestReplaceFailureInvokesHandler: when every market is unaffordable and
// there is no on-demand fallback, an installed OnReplaceFailed handler
// receives ErrNoViableMarket and the cluster degrades instead of
// panicking.
func TestReplaceFailureInvokesHandler(t *testing.T) {
	clk := simclock.New()
	e := noOnDemandExchange(t, 60)
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, err := New(clk, e, smallConfig(), sel, Events{})
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	m.SetOnReplaceFailed(func(pool string, err error) {
		failures++
		if pool != "a" {
			t.Errorf("handler pool = %q, want a", pool)
		}
		if !errors.Is(err, ErrNoViableMarket) {
			t.Errorf("handler error %v does not wrap ErrNoViableMarket", err)
		}
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * simclock.Hour)
	// All four nodes revoke at the spike; replacements fail in both pools
	// and there is no on-demand, so the handler fires once per node.
	if failures != 4 {
		t.Fatalf("OnReplaceFailed fired %d times, want 4", failures)
	}
	if got := len(m.LiveNodes()); got != 0 {
		t.Errorf("degraded cluster has %d live nodes, want 0", got)
	}
	if m.RevocationCount != 4 || m.ReplacementCount != 0 {
		t.Errorf("counters revocations=%d replacements=%d, want 4/0",
			m.RevocationCount, m.ReplacementCount)
	}
}

// TestReplaceFailurePanicsWithoutHandler: the pre-existing hard-error
// behaviour is preserved when no handler is installed, and the panic
// value is a typed error satisfying errors.Is(ErrNoViableMarket).
func TestReplaceFailurePanicsWithoutHandler(t *testing.T) {
	clk := simclock.New()
	e := noOnDemandExchange(t, 60)
	sel := &FixedSelector{PoolName: "a", Bid: 1, Fallbacks: []Request{{Pool: "b", Bid: 1}}}
	m, err := New(clk, e, smallConfig(), sel, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("replacement failure without a handler did not panic")
		}
		perr, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", r, r)
		}
		if !errors.Is(perr, ErrNoViableMarket) {
			t.Fatalf("panic error %v does not wrap ErrNoViableMarket", perr)
		}
	}()
	clk.RunUntil(2 * simclock.Hour)
}

// TestRevokeNewestOrdering: forced revocation kills the highest-ID
// (newest) nodes first and clamps at the live count, keeping repeated
// chaos injections deterministic.
func TestRevokeNewestOrdering(t *testing.T) {
	clk := simclock.New()
	e := noOnDemandExchange(t, -20) // never spikes
	m, err := New(clk, e, smallConfig(), &FixedSelector{PoolName: "a", Bid: 1}, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if got := m.RevokeNewest(2, false); got != 2 {
		t.Fatalf("RevokeNewest(2) = %d, want 2", got)
	}
	live := m.LiveNodes()
	if len(live) != 2 || live[0].ID != 1 || live[1].ID != 2 {
		t.Fatalf("survivors = %+v, want nodes 1 and 2", live)
	}
	if got := m.RevokeNewest(10, false); got != 2 {
		t.Fatalf("RevokeNewest(10) with 2 live = %d, want 2", got)
	}
	if got := len(m.LiveNodes()); got != 0 {
		t.Fatalf("live after full revocation = %d, want 0", got)
	}
}
