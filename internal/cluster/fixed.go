package cluster

// FixedSelector always provisions from a single pool at a fixed bid, with
// an optional fallback list for replacements. It is the trivial baseline
// (and test) selector; the paper's intelligent policies live in
// internal/policy.
type FixedSelector struct {
	PoolName  string
	Bid       float64
	Fallbacks []Request // tried in order for replacements
}

var _ Selector = (*FixedSelector)(nil)

// Initial provisions all n servers from the fixed pool.
func (s *FixedSelector) Initial(now float64, n int) []Request {
	return []Request{{Pool: s.PoolName, Bid: s.Bid, Count: n}}
}

// Replace suggests the first fallback (or the fixed pool itself) that is
// not excluded.
func (s *FixedSelector) Replace(now float64, revokedPool string, exclude []string, n int) []Request {
	excluded := func(pool string) bool {
		for _, e := range exclude {
			if e == pool {
				return true
			}
		}
		return false
	}
	for _, f := range s.Fallbacks {
		if !excluded(f.Pool) {
			return []Request{{Pool: f.Pool, Bid: f.Bid, Count: n}}
		}
	}
	if !excluded(s.PoolName) {
		return []Request{{Pool: s.PoolName, Bid: s.Bid, Count: n}}
	}
	return nil
}
