// Package cluster implements Flint's node manager: it provisions a
// fixed-size cluster of transient servers from a market exchange, watches
// for revocations, surfaces the provider's revocation warning (120 s on
// EC2, 30 s on GCE), and immediately acquires replacement servers so the
// cluster returns to its target size N (§2.3, §4 of the paper).
//
// Which market each replacement comes from is delegated to a Selector —
// the hook through which Flint's batch and interactive server-selection
// policies (internal/policy) plug in.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"flint/internal/market"
	"flint/internal/obs"
	"flint/internal/simclock"
)

// ErrNoViableMarket reports that a replacement server could not be
// acquired from any market the selector suggested, nor from on-demand.
// Callers installing Events.OnReplaceFailed receive it wrapped with the
// revoked pool and instant; without a handler the manager panics with the
// same error (a replacement-less cluster is a hard configuration error
// for the paper's experiments).
var ErrNoViableMarket = errors.New("cluster: no viable market for replacement")

// Node is one cluster member.
type Node struct {
	ID    int
	Pool  string
	Lease *market.Lease
	UpAt  float64 // simulation time the node became usable
	Gone  bool    // true once revoked or released

	// Capacity attributes, copied from Config at provisioning time.
	Slots     int   // parallel task slots (VCPUs)
	MemBytes  int64 // RDD cache capacity
	LocalDisk int64 // local SSD bytes (lost on revocation)

	// replacementOrdered is set when a proactive replacement was already
	// requested at warning time, so the revocation itself does not order
	// a second one.
	replacementOrdered bool
}

// Request asks the manager to acquire count servers from a pool at a bid.
type Request struct {
	Pool  string
	Bid   float64
	Count int
}

// Selector chooses which markets to provision from. Implementations live
// in internal/policy.
type Selector interface {
	// Initial picks the markets for the first N servers.
	Initial(now float64, n int) []Request
	// Replace picks markets for n replacement servers after a revocation
	// in revokedPool. The manager passes the pools that have already
	// failed during this replacement round in exclude; implementations
	// must not return them again.
	Replace(now float64, revokedPool string, exclude []string, n int) []Request
}

// PriceObserver is an optional Selector extension: selectors that
// rebalance on market observations (the portfolio policy) implement it,
// and a manager configured with ObserveEvery > 0 delivers a periodic
// virtual-time tick so the selector can watch prices between
// revocations, not just when one forces a Replace call.
type PriceObserver interface {
	// ObservePrices is called with the current virtual time.
	ObservePrices(now float64)
}

// Events are the notifications the execution engine subscribes to. Any
// handler may be nil.
type Events struct {
	// OnNodeUp fires when a node (initial or replacement) becomes usable.
	OnNodeUp func(n *Node)
	// OnWarning fires WarningLead seconds before a revocation, mirroring
	// EC2's /spot/termination-time notice.
	OnWarning func(n *Node, revokeAt float64)
	// OnRevoked fires at the instant a node is revoked. The node's cached
	// state is already gone when this is called.
	OnRevoked func(n *Node)
	// OnReplaceFailed fires when no market could supply a replacement
	// (err wraps ErrNoViableMarket). When nil, the manager panics
	// instead; chaos runs install a handler so exhausted markets degrade
	// the cluster cleanly rather than crashing the experiment.
	OnReplaceFailed func(pool string, err error)
}

// Config sizes the cluster and its servers. The defaults mirror the
// paper's testbed: 10× r3.large (2 VCPUs, 15 GB RAM of which Spark uses
// 40% for RDD storage, 32 GB local SSD), a two-minute revocation warning
// and a two-minute server-acquisition delay.
type Config struct {
	Size             int
	NodeSlots        int
	NodeMemBytes     int64
	NodeDiskBytes    int64
	WarningLead      float64 // seconds of advance revocation notice
	AcquisitionDelay float64 // rd: delay until a replacement is usable
	Replace          bool    // auto-replace revoked servers
	// ProactiveReplace starts the replacement at the provider's
	// revocation *warning* instead of at the revocation itself ("If
	// Flint detects a warning on any worker, it immediately triggers the
	// market selection on the node manager which selects and requests
	// replacement instances", §4). With EC2's two-minute warning and a
	// two-minute acquisition delay, the replacement comes up at the
	// moment the old server disappears.
	ProactiveReplace bool
	MaxRetries       int // pools to try per replacement before giving up
	// ObserveEvery, when positive and the selector implements
	// PriceObserver, delivers a price-observation tick to the selector
	// every ObserveEvery virtual seconds until Stop. Zero disables the
	// ticks (selectors still see prices on every Replace).
	ObserveEvery float64
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Size:             10,
		NodeSlots:        2,
		NodeMemBytes:     6 << 30, // 40% of 15 GB, the RDD storage fraction
		NodeDiskBytes:    32 << 30,
		WarningLead:      2 * simclock.Minute,
		AcquisitionDelay: 2 * simclock.Minute,
		Replace:          true,
		MaxRetries:       8,
	}
}

// Manager provisions and maintains the cluster.
type Manager struct {
	clock *simclock.Clock
	exch  *market.Exchange
	cfg   Config
	sel   Selector
	ev    Events

	nodes   map[int]*Node
	nextID  int
	stopped bool
	obs     *obs.Obs

	// Metrics.
	RevocationCount  int
	ReplacementCount int
	WarningCount     int
}

// New creates a manager. Start must be called to provision the initial
// cluster.
func New(clock *simclock.Clock, exch *market.Exchange, cfg Config, sel Selector, ev Events) (*Manager, error) {
	if cfg.Size <= 0 {
		return nil, errors.New("cluster: size must be positive")
	}
	if sel == nil {
		return nil, errors.New("cluster: nil selector")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	return &Manager{
		clock: clock, exch: exch, cfg: cfg, sel: sel, ev: ev,
		nodes: make(map[int]*Node),
		obs:   obs.Active(),
	}, nil
}

// SetObs installs the observability bundle warning and replacement events
// are reported to. A nil argument installs the shared no-op bundle.
func (m *Manager) SetObs(o *obs.Obs) {
	if o == nil {
		o = obs.Nop()
	}
	m.obs = o
}

// SetOnReplaceFailed installs the replacement-failure handler after
// construction (the engine builds the base Events value, so callers that
// want graceful degradation — chaos runs, resilience tests — bolt the
// handler on here). A nil handler restores the panic behaviour.
func (m *Manager) SetOnReplaceFailed(fn func(pool string, err error)) {
	m.ev.OnReplaceFailed = fn
}

// Start provisions the initial cluster synchronously: all Size nodes are
// usable at the current time (the paper measures jobs from a ready
// cluster).
func (m *Manager) Start() error {
	now := m.clock.Now()
	reqs := m.sel.Initial(now, m.cfg.Size)
	total := 0
	for _, r := range reqs {
		total += r.Count
	}
	if total != m.cfg.Size {
		return fmt.Errorf("cluster: selector provided %d servers, want %d", total, m.cfg.Size)
	}
	for _, r := range reqs {
		for i := 0; i < r.Count; i++ {
			if err := m.provision(r.Pool, r.Bid, now, now); err != nil {
				return fmt.Errorf("cluster: initial provisioning: %w", err)
			}
		}
	}
	if po, ok := m.sel.(PriceObserver); ok && m.cfg.ObserveEvery > 0 {
		var tick func()
		tick = func() {
			if m.stopped {
				return
			}
			po.ObservePrices(m.clock.Now())
			m.clock.Schedule(m.clock.Now()+m.cfg.ObserveEvery, tick)
		}
		m.clock.Schedule(now+m.cfg.ObserveEvery, tick)
	}
	return nil
}

// provision acquires one lease and registers the node, scheduling its
// warning and revocation events. The node becomes usable at upAt.
func (m *Manager) provision(pool string, bid, now, upAt float64) error {
	lease, err := m.exch.Acquire(pool, bid, now)
	if err != nil {
		return err
	}
	m.nextID++
	n := &Node{
		ID: m.nextID, Pool: pool, Lease: lease, UpAt: upAt,
		Slots: m.cfg.NodeSlots, MemBytes: m.cfg.NodeMemBytes, LocalDisk: m.cfg.NodeDiskBytes,
	}
	m.nodes[n.ID] = n
	if upAt > now {
		m.clock.Schedule(upAt, func() {
			if m.stopped || n.Gone {
				return
			}
			if m.ev.OnNodeUp != nil {
				m.ev.OnNodeUp(n)
			}
		})
	} else if m.ev.OnNodeUp != nil {
		m.ev.OnNodeUp(n)
	}
	if at, ok := lease.RevocationTime(); ok {
		warnAt := at - m.cfg.WarningLead
		if warnAt < now {
			warnAt = now
		}
		m.clock.Schedule(warnAt, func() {
			if m.stopped || n.Gone {
				return
			}
			m.WarningCount++
			m.obs.NodeWarnings.Inc()
			m.obs.Emit(obs.Event{
				Type: obs.EvNodeWarning, Time: m.clock.Now(),
				Dur: at - m.clock.Now(), Node: n.ID, Pool: n.Pool,
			})
			if m.ev.OnWarning != nil {
				m.ev.OnWarning(n, at)
			}
			if m.cfg.Replace && m.cfg.ProactiveReplace && !n.replacementOrdered {
				n.replacementOrdered = true
				m.replaceOne(n.Pool, m.clock.Now())
			}
		})
		m.clock.Schedule(at, func() { m.revoke(n) })
	}
	return nil
}

// revoke handles a provider-initiated revocation of n.
func (m *Manager) revoke(n *Node) {
	if m.stopped || n.Gone {
		return
	}
	now := m.clock.Now()
	n.Gone = true
	delete(m.nodes, n.ID)
	m.RevocationCount++
	if p := m.exch.Pool(n.Pool); p != nil {
		m.obs.Emit(obs.Event{Type: obs.EvPriceChange, Time: now, Pool: n.Pool, Price: p.PriceAt(now)})
	}
	if m.ev.OnRevoked != nil {
		m.ev.OnRevoked(n)
	}
	if m.cfg.Replace && !n.replacementOrdered {
		m.replaceOne(n.Pool, now)
	}
}

// RevokeNow force-revokes a node immediately (failure injection for
// experiments). If replace is true the normal replacement flow runs.
func (m *Manager) RevokeNow(id int, replace bool) error {
	n := m.nodes[id]
	if n == nil {
		return fmt.Errorf("cluster: no live node %d", id)
	}
	now := m.clock.Now()
	n.Gone = true
	delete(m.nodes, n.ID)
	m.RevocationCount++
	if m.ev.OnRevoked != nil {
		m.ev.OnRevoked(n)
	}
	if replace {
		m.replaceOne(n.Pool, now)
	}
	return nil
}

// replaceOne asks the selector for one replacement server, excluding the
// revoked pool (its price just spiked, per the paper's restoration
// policy), and falls back to on-demand if every suggested pool fails.
func (m *Manager) replaceOne(revokedPool string, now float64) {
	exclude := []string{revokedPool}
	for try := 0; try < m.cfg.MaxRetries; try++ {
		reqs := m.sel.Replace(now, revokedPool, exclude, 1)
		if len(reqs) == 0 {
			break
		}
		r := reqs[0]
		err := m.provision(r.Pool, r.Bid, now, now+m.cfg.AcquisitionDelay)
		if err == nil {
			m.ReplacementCount++
			m.obs.Replacements.Inc()
			return
		}
		exclude = append(exclude, r.Pool)
	}
	// Last resort: the non-revocable on-demand pool, if present.
	if od := m.exch.Pool("on-demand"); od != nil {
		if err := m.provision("on-demand", math.Inf(1), now, now+m.cfg.AcquisitionDelay); err == nil {
			m.ReplacementCount++
			m.obs.Replacements.Inc()
			return
		}
	}
	// Could not replace; the cluster runs degraded. With a handler the
	// caller decides (chaos runs log and continue); otherwise this stays
	// the hard configuration error the experiments treat it as.
	err := fmt.Errorf("%w (replacing pool %s at t=%.0f)", ErrNoViableMarket, revokedPool, now)
	if m.ev.OnReplaceFailed != nil {
		m.ev.OnReplaceFailed(revokedPool, err)
		return
	}
	panic(err)
}

// RevokeNewest force-revokes the k highest-ID live nodes (the newest
// servers, so repeated injections are deterministic) and returns how many
// were revoked. Chaos schedules use it for revocation bursts.
func (m *Manager) RevokeNewest(k int, replace bool) int {
	live := m.LiveNodes()
	sort.Slice(live, func(i, j int) bool { return live[i].ID > live[j].ID })
	if k > len(live) {
		k = len(live)
	}
	for i := 0; i < k; i++ {
		if err := m.RevokeNow(live[i].ID, replace); err != nil {
			return i
		}
	}
	return k
}

// LiveNodes returns the nodes currently usable (UpAt ≤ now, not revoked)
// in ID order.
func (m *Manager) LiveNodes() []*Node {
	now := m.clock.Now()
	out := make([]*Node, 0, len(m.nodes))
	for id := 1; id <= m.nextID; id++ {
		if n, ok := m.nodes[id]; ok && n.UpAt <= now {
			out = append(out, n)
		}
	}
	return out
}

// PendingNodes returns nodes acquired but not yet usable.
func (m *Manager) PendingNodes() []*Node {
	now := m.clock.Now()
	out := make([]*Node, 0)
	for id := 1; id <= m.nextID; id++ {
		if n, ok := m.nodes[id]; ok && n.UpAt > now {
			out = append(out, n)
		}
	}
	return out
}

// Size returns the configured target cluster size.
func (m *Manager) Size() int { return m.cfg.Size }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stop releases every lease at the current time and disables further
// events (job finished).
func (m *Manager) Stop() {
	now := m.clock.Now()
	m.stopped = true
	// Map-order audit (flintlint maporder): Release only stamps the
	// lease end time and Gone is a per-node flag, so releasing in map
	// iteration order is observably order-independent.
	for _, n := range m.nodes {
		m.exch.Release(n.Lease, now)
		n.Gone = true
	}
	m.nodes = make(map[int]*Node)
}

// Cost returns the total dollars spent across all leases as of now.
func (m *Manager) Cost() float64 { return m.exch.TotalCost(m.clock.Now()) }
