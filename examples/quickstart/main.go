// Quickstart: run a wordcount on a cluster of simulated spot instances,
// lose a server to a revocation mid-run, and let Flint's node manager and
// lineage-based recomputation carry the job to the right answer anyway.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"flint"
)

func main() {
	// 1. A marketplace: the paper's three measured EC2 spot markets plus
	// an on-demand pool, with a week of price history before time zero.
	exch, err := flint.NewSpotExchange(flint.StandardEC2Profiles(), 1, 24*7, 24*30)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A Flint deployment: 10 transient servers picked by the batch
	// policy (single market, minimum expected cost per Eq. 2 of the
	// paper), with adaptive checkpointing.
	ctx := flint.NewContext(16)
	cl, err := flint.Launch(exch, ctx, flint.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fmt.Printf("cluster up: %d servers from %q markets\n", len(cl.Cluster.LiveNodes()), cl.Cluster.LiveNodes()[0].Pool)

	// 3. An RDD program: documents → words → counts.
	counts, res, err := flint.RunWordCount(cl, ctx, flint.WordCountConfig{
		Docs: 5000, WordsPerDoc: 80, Vocab: 1000, Parts: 16, TargetBytes: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount: %d distinct words in %.1f virtual seconds\n", len(counts), res.Latency())
	top(counts, 5)

	// 4. Inject a revocation (as the spot market would) and run again:
	// the node manager replaces the server, lost partitions recompute
	// from lineage, and the answer is identical.
	victim := cl.Cluster.LiveNodes()[0]
	if err := cl.Cluster.RevokeNow(victim.ID, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revoked node %d; cluster heals itself\n", victim.ID)
	counts2, res2, err := flint.RunWordCount(cl, ctx, flint.WordCountConfig{
		Docs: 5000, WordsPerDoc: 80, Vocab: 1000, Parts: 16, TargetBytes: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(counts) == len(counts2)
	for w, n := range counts {
		if counts2[w] != n {
			same = false
			break
		}
	}
	fmt.Printf("post-revocation run: %.1f virtual seconds, identical result: %v\n", res2.Latency(), same)

	// 5. The bill.
	cost := cl.Cost()
	fmt.Printf("total cost: $%.4f (compute $%.4f + checkpoint storage $%.6f)\n", cost.Total, cost.Compute, cost.Storage)
}

func top(counts map[string]int, k int) {
	type wc struct {
		w string
		n int
	}
	all := make([]wc, 0, len(counts))
	for w, n := range counts {
		all = append(all, wc{w, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	fmt.Print("top words:")
	for _, e := range all[:k] {
		fmt.Printf(" %s=%d", e.w, e.n)
	}
	fmt.Println()
}
