// Market picker: watch Flint's two server-selection policies reason over
// a set of simulated spot markets — the batch policy minimizing Eq. 2
// expected cost in a single market, and the interactive policy greedily
// diversifying across uncorrelated markets to shrink response-time
// variance (Eq. 3/4).
//
//	go run ./examples/marketpicker
package main

import (
	"fmt"
	"log"
	"math"

	"flint/internal/market"
	"flint/internal/policy"
	"flint/internal/simclock"
	"flint/internal/trace"
)

func main() {
	profiles := trace.PoolSet(14, 9)
	exch, err := market.SpotExchange(profiles, 31, 24*14, 24, market.BillPerSecond)
	if err != nil {
		log.Fatal(err)
	}
	params := policy.DefaultParams()

	fmt.Println("market snapshot (sorted by Eq. 2 expected cost):")
	fmt.Println("  market                        MTTF     avg $/hr  E[T]/T   $/useful-hr")
	for _, mi := range policy.Snapshot(exch, 0, params) {
		mttf := "      inf"
		if !math.IsInf(mi.MTTF, 1) {
			mttf = fmt.Sprintf("%7.1f h", mi.MTTF/simclock.Hour)
		}
		spike := ""
		if mi.Spiking {
			spike = "  (price spiking — excluded)"
		}
		fmt.Printf("  %-28s %s  %8.4f  %6.3f  %10.4f%s\n",
			mi.Pool.Name, mttf, mi.AvgPrice, mi.Factor, mi.CostRate, spike)
	}

	batch := policy.NewBatch(exch, params)
	breqs := batch.Initial(0, 10)
	fmt.Printf("\nbatch policy (one market, minimum expected cost):\n")
	for _, r := range breqs {
		fmt.Printf("  %d × %s at bid $%.4f (the on-demand price)\n", r.Count, r.Pool, r.Bid)
	}
	fmt.Printf("  cluster MTTF: %.1f h\n", batch.MTTF(0)/simclock.Hour)

	inter := policy.NewInteractive(exch, params)
	ireqs := inter.Initial(0, 10)
	fmt.Printf("\ninteractive policy (diversified, variance-minimizing):\n")
	for _, r := range ireqs {
		fmt.Printf("  %d × %s at bid $%.4f\n", r.Count, r.Pool, r.Bid)
	}
	fmt.Printf("  aggregate cluster MTTF (Eq. 3): %.1f h — lower, but each revocation\n", inter.MTTF(0)/simclock.Hour)
	fmt.Println("  event now takes only a fraction of the cluster")

	// The variance argument, quantified.
	sel := inter.SelectMarkets(0)
	var mttfs []float64
	for _, mi := range sel {
		mttfs = append(mttfs, mi.MTTF)
	}
	one := policy.RuntimeVariance(simclock.Hour, 12, 120, mttfs[:1])
	all := policy.RuntimeVariance(simclock.Hour, 12, 120, mttfs)
	fmt.Printf("\nruntime stddev for a 1-hour job: %.0f s on one market → %.0f s across %d markets\n",
		math.Sqrt(one), math.Sqrt(all), len(mttfs))
}
