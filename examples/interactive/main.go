// Interactive TPC-H session on a diversified transient cluster: tables
// are cached in memory, queries arrive with think time, the FT manager
// checkpoints the cached tables in the background, and a revocation
// mid-session barely dents response latency — the Figure 9 story as a
// runnable program.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"

	"flint"
)

func main() {
	// Twelve spot markets: the interactive policy will pick several
	// mutually uncorrelated ones and split the cluster across them.
	exch, err := flint.NewSpotExchange(flint.PoolSet(12, 5), 23, 24*7, 24*30)
	if err != nil {
		log.Fatal(err)
	}
	ctx := flint.NewContext(20)
	spec := flint.DefaultSpec()
	spec.Mode = flint.ModeInteractive
	cl, err := flint.Launch(exch, ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	markets := map[string]int{}
	for _, n := range cl.Cluster.LiveNodes() {
		markets[n.Pool]++
	}
	fmt.Printf("diversified cluster across %d markets: %v\n", len(markets), markets)

	// Load the database (the paper de-serializes, re-partitions and
	// caches the tables once).
	tp := flint.BuildTPCH(ctx, flint.TPCHConfig{
		Customers: 300, OrdersPerCust: 8, LinesPerOrder: 4, Parts: 20, TargetBytes: 10 << 30,
	})
	loadT, err := tp.Load(cl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables cached in %.1f virtual seconds\n", loadT)

	// An analyst session: queries with think time. Midway, one server is
	// revoked; with only 1/m of the cluster lost and checkpoints in the
	// DFS, latency stays consistent.
	queries := []struct {
		name string
		run  func(qid int) (float64, error)
	}{
		{"Q3 shipping priority", func(qid int) (float64, error) {
			_, r, err := tp.Q3(cl, qid, "BUILDING", 1200)
			return latencyOf(r), err
		}},
		{"Q1 pricing summary", func(qid int) (float64, error) {
			_, r, err := tp.Q1(cl, qid, 2000)
			return latencyOf(r), err
		}},
		{"Q6 revenue forecast", func(qid int) (float64, error) {
			_, r, err := tp.Q6(cl, qid, 365, 730, 0.02, 0.06, 25)
			return latencyOf(r), err
		}},
		{"Q3 (after revocation)", func(qid int) (float64, error) {
			_, r, err := tp.Q3(cl, qid, "MACHINERY", 900)
			return latencyOf(r), err
		}},
		{"Q1 (after revocation)", func(qid int) (float64, error) {
			_, r, err := tp.Q1(cl, qid, 1500)
			return latencyOf(r), err
		}},
	}
	for i, q := range queries {
		if i == 3 {
			victim := cl.Cluster.LiveNodes()[0]
			if err := cl.Cluster.RevokeNow(victim.ID, true); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("-- spot market revoked node %d (pool %s); session continues --\n", victim.ID, victim.Pool)
		}
		lat, err := q.run(100 + i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %6.1f s\n", q.name, lat)
		cl.Clock.Advance(90) // analyst think time
	}

	cost := cl.Cost()
	fmt.Printf("session cost so far: $%.4f (revocations handled: %d)\n", cost.Total, cl.Cluster.RevocationCount)
}

func latencyOf(r *flint.Result) float64 {
	if r == nil {
		return 0
	}
	return r.Latency()
}
