// Batch PageRank on transient servers: the same graph is ranked twice
// under a mass revocation — once with recomputation only (unmodified
// Spark behaviour) and once with Flint's adaptive checkpointing — to show
// how the τ = √(2δ·MTTF) policy bounds the damage.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"sort"

	"flint"
)

func rank(withCheckpointing bool) (*flint.WorkloadReport, *flint.Cluster) {
	exch, err := flint.NewSpotExchange(flint.PoolSet(8, 3), 7, 24*7, 24*30)
	if err != nil {
		log.Fatal(err)
	}
	ctx := flint.NewContext(20)
	spec := flint.DefaultSpec()
	spec.MTTFOverride = 3600 // one-hour MTTF: a volatile day on the spot market
	if !withCheckpointing {
		spec.Checkpoint = flint.CkptNone
	}
	cl, err := flint.Launch(exch, ctx, spec)
	if err != nil {
		log.Fatal(err)
	}

	// Revoke half the cluster partway through, exactly like a spot-price
	// spike taking out the whole market (§3.1: all servers in one market
	// are revoked together).
	cl.Clock.Schedule(120, func() {
		live := cl.Cluster.LiveNodes()
		for i := 0; i < 5 && i < len(live); i++ {
			if err := cl.Cluster.RevokeNow(live[i].ID, true); err != nil {
				log.Fatal(err)
			}
		}
	})

	rep, err := flint.RunPageRank(cl, ctx, flint.PageRankConfig{
		Vertices: 3000, AvgDegree: 8, Parts: 20, Iterations: 12, TargetBytes: 2 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep, cl
}

func main() {
	recomp, cl1 := rank(false)
	defer cl1.Stop()
	ckpt, cl2 := rank(true)
	defer cl2.Stop()

	fmt.Printf("recomputation only:   %6.0f virtual s (%d partitions recomputed)\n",
		recomp.RunningTime, recomp.Stats.RecomputedPartitions)
	fmt.Printf("Flint checkpointing:  %6.0f virtual s (%d partitions recomputed, %d checkpoints, %d restores)\n",
		ckpt.RunningTime, ckpt.Stats.RecomputedPartitions, ckpt.Stats.CheckpointTasks, ckpt.Stats.CheckpointReads)
	if ckpt.RunningTime < recomp.RunningTime {
		fmt.Printf("checkpointing saved %.0f%% of the running time under failure\n",
			100*(1-ckpt.RunningTime/recomp.RunningTime))
	}

	// Both runs converge to the same ranks — failures never corrupt data.
	a := recomp.Outcome.(map[int]float64)
	b := ckpt.Outcome.(map[int]float64)
	diff := 0.0
	for v, r := range a {
		d := r - b[v]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	fmt.Printf("rank divergence between runs: %.2g (identical lineage, identical answer)\n", diff)

	// The highest-ranked vertices.
	type vr struct {
		v int
		r float64
	}
	all := make([]vr, 0, len(b))
	for v, r := range b {
		all = append(all, vr{v, r})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	fmt.Print("top pages:")
	for _, e := range all[:5] {
		fmt.Printf(" v%d=%.2f", e.v, e.r)
	}
	fmt.Println()
}
