// Streaming on transient servers: a Spark-Streaming-style stateful
// micro-batch job (running per-key counters over an event stream) rides
// out revocations because Flint's adaptive checkpointing truncates the
// ever-growing state lineage — the future-work direction §6 of the paper
// sketches, implemented.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"flint"
	"flint/internal/stream"
)

func main() {
	exch, err := flint.NewSpotExchange(flint.PoolSet(8, 3), 7, 24*7, 24*30)
	if err != nil {
		log.Fatal(err)
	}
	ctx := flint.NewContext(16)
	spec := flint.DefaultSpec()
	spec.MTTFOverride = 1800 // a very volatile market, to exercise checkpointing
	cl, err := flint.Launch(exch, ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	sc, err := stream.NewContext(cl, cl.Clock, ctx, stream.Config{
		BatchInterval: 30, Parts: 16, RowBytes: 4 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic clickstream: each batch delivers events for 20 pages.
	clicks := sc.Source("clicks", func(batch, part int) []flint.Row {
		var out []flint.Row
		for i := part; i < 400; i += 16 {
			page := fmt.Sprintf("/page/%02d", (i*7+batch)%20)
			out = append(out, flint.KV{K: page, V: 1})
		}
		return out
	})
	totals := clicks.
		ReduceByKey("per-batch", func(a, b flint.Row) flint.Row { return a.(int) + b.(int) }).
		UpdateStateByKey("running-totals", func(state flint.Row, added []flint.Row) flint.Row {
			total := 0
			if state != nil {
				total = state.(int)
			}
			for _, v := range added {
				total += v.(int)
			}
			return total
		})

	// Process 10 batches; revoke two servers midway.
	cl.Clock.Schedule(140, func() {
		live := cl.Cluster.LiveNodes()
		for i := 0; i < 2 && i < len(live); i++ {
			if err := cl.Cluster.RevokeNow(live[i].ID, true); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println("-- two servers revoked mid-stream --")
	})
	stats, err := totals.RunStateful(10)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		flag := "stable"
		if !s.Stable {
			flag = "FALLING BEHIND"
		}
		fmt.Printf("batch %2d: %5.1f s processing, %4d keyed records  [%s]\n",
			s.Batch, s.Latency(), s.Records, flag)
	}

	state, err := totals.CollectState()
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, v := range state {
		total += v.(int)
	}
	fmt.Printf("running totals over %d pages, %d clicks counted — exactly 400 × 10 batches: %v\n",
		len(state), total, total == 4000)
	fmt.Printf("checkpoints written: %d; cost so far: $%.4f\n",
		cl.Engine.Snapshot().CheckpointTasks, cl.Cost().Total)
}
