// Command flintbench regenerates the tables and figures of the Flint
// paper's evaluation (EuroSys 2016, §5) on the simulated substrates.
//
// Usage:
//
//	flintbench [flags] <experiment> [<experiment>...]
//	flintbench all
//
// Experiments: fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 ablations
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-versus-measured record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flint/internal/experiments"
	"flint/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor for the systems experiments")
	runs := flag.Int("runs", 0, "Monte Carlo runs for the long-horizon studies (0 = default)")
	markets := flag.Int("markets", 16, "market count for the correlation study")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV files into this directory")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file covering the selected experiments to this path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flintbench [flags] <experiment>...\nexperiments: %v\n", names())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = names()
	}
	var bundle *obs.Obs
	if *traceOut != "" {
		// Experiments assemble their own deployments internally, so the
		// bundle is installed as the process default, which every engine,
		// cluster manager and exchange picks up at construction.
		bundle = obs.New(obs.Options{RingCapacity: 1 << 18})
		obs.SetDefault(bundle)
	}
	s := experiments.Scale(*scale)
	for _, name := range args {
		start := time.Now()
		if err := run(os.Stdout, name, s, *runs, *markets, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "flintbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if bundle != nil {
		if err := writeTrace(*traceOut, bundle); err != nil {
			fmt.Fprintf(os.Stderr, "flintbench: trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the bundle's event buffer as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func writeTrace(path string, o *obs.Obs) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := o.Tracer.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "flintbench: trace ring buffer overflowed; oldest %d events dropped\n", d)
	}
	fmt.Printf("trace: %d events written to %s\n", o.Tracer.Len(), path)
	return nil
}

func names() []string {
	return []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"}
}

// csvWriter is satisfied by every FigNResult.
type csvWriter interface {
	WriteCSV(dir string) error
}

func export(csvDir string, res csvWriter, err error) error {
	if err != nil || csvDir == "" {
		return err
	}
	return res.WriteCSV(csvDir)
}

func run(w io.Writer, name string, s experiments.Scale, runs, markets int, csvDir string) error {
	switch name {
	case "fig2":
		res, err := experiments.Fig2(w)
		return export(csvDir, res, err)
	case "fig3":
		res, err := experiments.Fig3(w, s)
		return export(csvDir, res, err)
	case "fig4":
		res, err := experiments.Fig4(w, markets)
		return export(csvDir, res, err)
	case "fig6":
		res, err := experiments.Fig6(w, s)
		return export(csvDir, res, err)
	case "fig7":
		res, err := experiments.Fig7(w, s)
		return export(csvDir, res, err)
	case "fig8":
		res, err := experiments.Fig8(w, s)
		return export(csvDir, res, err)
	case "fig9":
		res, err := experiments.Fig9(w, s)
		return export(csvDir, res, err)
	case "fig10":
		res, err := experiments.Fig10(w, runs)
		return export(csvDir, res, err)
	case "fig11":
		res, err := experiments.Fig11(w, runs)
		return export(csvDir, res, err)
	case "ablations":
		if _, err := experiments.AblationFrontier(w, s); err != nil {
			return err
		}
		if _, err := experiments.AblationShuffle(w, s); err != nil {
			return err
		}
		experiments.AblationDiversification(w)
		experiments.StorageOverhead(w)
		return nil
	}
	return fmt.Errorf("unknown experiment %q (want one of %v)", name, names())
}
