// Command flintbench regenerates the tables and figures of the Flint
// paper's evaluation (EuroSys 2016, §5) on the simulated substrates.
//
// Usage:
//
//	flintbench [flags] <experiment> [<experiment>...]
//	flintbench all
//
// Experiments: fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 portfolio
// ablations detbench chaosbench serverless
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-versus-measured record. detbench runs the
// fixed-seed determinism scenarios whose -csv exports must be identical
// for any -workers value (CI diffs them). chaosbench replays seeded
// fault schedules (see docs/CHAOS.md) and exits non-zero if any
// cross-layer invariant is violated, dumping replayable schedules via
// -chaos-out. serverless sweeps the execution backends over the
// workload × revocation-intensity grid and exports the cost/latency
// frontier (see docs/SERVERLESS.md). -backend=fn reruns any experiment
// on the function-slot backend; workload outcomes must not change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"flint/internal/exec"
	"flint/internal/experiments"
	"flint/internal/obs"
	"flint/internal/rdd"
	"flint/internal/serverless"
)

// benchEntry is one line of the machine-readable benchmark record
// (-bench-out): a scenario's virtual makespan, real runtime and — for
// detbench scenarios — the determinism fingerprints (outcome and trace
// FNV-64a) that cmd/benchdiff gates against the committed anchor.
type benchEntry struct {
	Name        string  `json:"name"`
	VirtualS    float64 `json:"virtual_s,omitempty"`
	WallS       float64 `json:"wall_s"`
	OutcomeFNV  string  `json:"outcome_fnv,omitempty"`
	TraceFNV    string  `json:"trace_fnv,omitempty"`
	TraceEvents int     `json:"trace_events,omitempty"`
	Allocs      uint64  `json:"allocs,omitempty"` // heap allocations during the run (benchdiff gates growth for columnar records)
}

// benchRecord is the BENCH_<rev>.json payload CI uploads as an artifact,
// seeding the perf trajectory across revisions.
type benchRecord struct {
	Rev       string       `json:"rev,omitempty"`
	Workers   int          `json:"workers"`
	GoMaxProc int          `json:"gomaxprocs"`
	Scale     float64      `json:"scale"`
	Columnar  bool         `json:"columnar"`
	ColCarry  bool         `json:"colcarry"`
	Backend   string       `json:"backend,omitempty"`
	Scenarios []benchEntry `json:"scenarios"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor for the systems experiments")
	runs := flag.Int("runs", 0, "Monte Carlo runs for the long-horizon studies (0 = default)")
	markets := flag.Int("markets", 16, "market count for the correlation study")
	portfolioMarkets := flag.Int("portfolio-markets", 120, "generated market-universe size for the portfolio policy sweep")
	csvDir := flag.String("csv", "", "also write each figure's series as CSV files into this directory")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file covering the selected experiments to this path")
	workers := flag.Int("workers", 0, "engine worker-pool width for task execution (0 = GOMAXPROCS; 1 = serial); any value produces identical results")
	columnar := flag.Bool("columnar", true, "use the columnar data-plane kernels (false forces the generic Row path; results are identical either way)")
	colcarry := flag.Bool("colcarry", true, "carry column batches end-to-end through shuffle/cache/checkpoint (false boxes at every operator boundary; results are identical either way)")
	chaosSeeds := flag.Int("chaos-seeds", 25, "chaosbench: seeds per profile (1..n)")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaosbench: run only this single seed (overrides -chaos-seeds; use to replay an artifact)")
	chaosProfile := flag.String("chaos-profile", "", "chaosbench: run only this fault profile (default: all)")
	chaosOut := flag.String("chaos-out", "", "chaosbench: dump violating schedules as replayable JSON artifacts into this directory")
	benchOut := flag.String("bench-out", "", "write a machine-readable benchmark record (scenario -> virtual makespan + wall seconds) to this JSON file")
	rev := flag.String("rev", "", "revision identifier recorded in the -bench-out file")
	backend := flag.String("backend", "vm", "execution backend: vm (spot servers, local state) or fn (function slots, externalized state); workload outcomes are identical either way")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flintbench [flags] <experiment>...\nexperiments: %v\n", names())
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = names()
	}
	exec.SetDefaultWorkers(*workers)
	rdd.SetColumnar(*columnar)
	rdd.SetColumnCarry(*colcarry)
	switch *backend {
	case "vm":
		// Default: the engine's built-in VM backend.
	case "fn":
		experiments.SetBackendFactory(func() exec.Backend {
			return serverless.New(serverless.Config{})
		})
	default:
		fmt.Fprintf(os.Stderr, "flintbench: unknown -backend %q (want vm or fn)\n", *backend)
		os.Exit(2)
	}
	var bundle *obs.Obs
	if *traceOut != "" {
		// Experiments assemble their own deployments internally, so the
		// bundle is installed as the process default, which every engine,
		// cluster manager and exchange picks up at construction.
		bundle = obs.New(obs.Options{RingCapacity: 1 << 18})
		obs.SetDefault(bundle)
	}
	s := experiments.Scale(*scale)
	chaosOpts := experiments.ChaosbenchOpts{
		Seeds:       experiments.DefaultChaosSeeds(*chaosSeeds),
		ArtifactDir: *chaosOut,
	}
	if *chaosSeed != 0 {
		chaosOpts.Seeds = []int64{*chaosSeed}
	}
	if *chaosProfile != "" {
		chaosOpts.Profiles = []string{*chaosProfile}
	}
	record := benchRecord{
		Rev: *rev, Workers: *workers, GoMaxProc: runtime.GOMAXPROCS(0), Scale: *scale,
		Columnar: *columnar, ColCarry: *colcarry, Backend: *backend,
	}
	for _, name := range args {
		sw := obs.Stopwatch()
		entries, err := run(os.Stdout, name, s, *runs, *markets, *portfolioMarkets, *csvDir, chaosOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flintbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wallS := sw()
		// Experiments that don't report per-scenario entries get one
		// entry covering the whole run.
		if len(entries) == 0 {
			entries = []benchEntry{{Name: name, WallS: wallS}}
		}
		record.Scenarios = append(record.Scenarios, entries...)
		fmt.Printf("[%s completed in %.3fs]\n\n", name, wallS)
	}
	if bundle != nil {
		if err := writeTrace(*traceOut, bundle); err != nil {
			fmt.Fprintf(os.Stderr, "flintbench: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, record); err != nil {
			fmt.Fprintf(os.Stderr, "flintbench: bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeBench dumps the benchmark record as indented JSON.
func writeBench(path string, rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d scenarios written to %s\n", len(rec.Scenarios), path)
	return nil
}

// writeTrace dumps the bundle's event buffer as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func writeTrace(path string, o *obs.Obs) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := o.Tracer.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "flintbench: trace ring buffer overflowed; oldest %d events dropped\n", d)
	}
	fmt.Printf("trace: %d events written to %s\n", o.Tracer.Len(), path)
	return nil
}

func names() []string {
	return []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "portfolio", "ablations", "detbench", "chaosbench", "serverless"}
}

// csvWriter is satisfied by every FigNResult.
type csvWriter interface {
	WriteCSV(dir string) error
}

func export(csvDir string, res csvWriter, err error) error {
	if err != nil || csvDir == "" {
		return err
	}
	return res.WriteCSV(csvDir)
}

// run executes one experiment. A non-nil entries slice carries
// per-scenario benchmark lines for -bench-out; experiments without
// internal scenarios return nil and the caller records their wall time.
func run(w io.Writer, name string, s experiments.Scale, runs, markets, portfolioMarkets int, csvDir string, chaosOpts experiments.ChaosbenchOpts) ([]benchEntry, error) {
	switch name {
	case "fig2":
		res, err := experiments.Fig2(w)
		return nil, export(csvDir, res, err)
	case "fig3":
		res, err := experiments.Fig3(w, s)
		return nil, export(csvDir, res, err)
	case "fig4":
		res, err := experiments.Fig4(w, markets)
		return nil, export(csvDir, res, err)
	case "fig6":
		res, err := experiments.Fig6(w, s)
		return nil, export(csvDir, res, err)
	case "fig7":
		res, err := experiments.Fig7(w, s)
		return nil, export(csvDir, res, err)
	case "fig8":
		res, err := experiments.Fig8(w, s)
		return nil, export(csvDir, res, err)
	case "fig9":
		res, err := experiments.Fig9(w, s)
		return nil, export(csvDir, res, err)
	case "fig10":
		res, err := experiments.Fig10(w, runs)
		return nil, export(csvDir, res, err)
	case "fig11":
		res, err := experiments.Fig11(w, runs)
		return nil, export(csvDir, res, err)
	case "portfolio":
		res, err := experiments.PortfolioSweep(w, portfolioMarkets, runs)
		return nil, export(csvDir, res, err)
	case "ablations":
		if _, err := experiments.AblationFrontier(w, s); err != nil {
			return nil, err
		}
		if _, err := experiments.AblationShuffle(w, s); err != nil {
			return nil, err
		}
		experiments.AblationDiversification(w)
		experiments.StorageOverhead(w)
		return nil, nil
	case "detbench":
		res, err := experiments.Detbench(w, s)
		if err != nil {
			return nil, err
		}
		entries := make([]benchEntry, 0, len(res.Scenarios))
		for _, sc := range res.Scenarios {
			entries = append(entries, benchEntry{
				Name: "detbench/" + sc.Name, VirtualS: sc.VirtualS, WallS: sc.WallS,
				OutcomeFNV:  fmt.Sprintf("%016x", sc.OutcomeFNV),
				TraceFNV:    fmt.Sprintf("%016x", sc.TraceFNV),
				TraceEvents: sc.TraceN,
				Allocs:      sc.Allocs,
			})
		}
		return entries, export(csvDir, res, nil)
	case "chaosbench":
		res, err := experiments.Chaosbench(w, s, chaosOpts)
		if err != nil {
			return nil, err
		}
		if err := export(csvDir, res, nil); err != nil {
			return nil, err
		}
		// A violated invariant is a failed run: CI gates on the exit code
		// and uploads the dumped schedules as repro artifacts.
		if n := res.Violations(); n > 0 {
			return nil, fmt.Errorf("%d of %d runs violated invariants (replayable schedules in %q)",
				n, len(res.Runs), chaosOpts.ArtifactDir)
		}
		return nil, nil
	case "serverless":
		res, err := experiments.Serverless(w, s)
		return nil, export(csvDir, res, err)
	}
	return nil, fmt.Errorf("unknown experiment %q (want one of %v)", name, names())
}
