package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flint/internal/experiments"
)

func TestNamesCoverAllExperiments(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "portfolio", "ablations", "detbench", "chaosbench", "serverless"}
	got := names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	_, err := run(io.Discard, "fig99", 1, 0, 8, 16, "", experiments.ChaosbenchOpts{})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig4"} {
		if _, err := run(io.Discard, name, 1, 2, 6, 16, "", experiments.ChaosbenchOpts{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunWithCSVExport(t *testing.T) {
	dir := t.TempDir()
	if _, err := run(io.Discard, "fig2", 1, 2, 6, 16, dir, experiments.ChaosbenchOpts{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDetbench exercises the determinism scenarios end to end at a
// small scale: per-scenario bench entries, the diffable CSV, and the
// filtered Prometheus dumps.
func TestRunDetbench(t *testing.T) {
	dir := t.TempDir()
	entries, err := run(io.Discard, "detbench", 0.2, 0, 8, 16, dir, experiments.ChaosbenchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("detbench returned no bench entries")
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name, "detbench/") || e.VirtualS <= 0 {
			t.Fatalf("bench entry = %+v", e)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "detbench.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "wall") {
		t.Fatalf("detbench.csv must not carry wall-clock columns:\n%s", data)
	}
	proms, err := filepath.Glob(filepath.Join(dir, "detbench_*_metrics.prom"))
	if err != nil || len(proms) != len(entries) {
		t.Fatalf("prom dumps = %v (err %v), want %d", proms, err, len(entries))
	}
	for _, p := range proms {
		text, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(text), "flint_exec_") {
			t.Fatalf("%s leaks nondeterministic flint_exec_ metrics", p)
		}
	}
}

// TestRunChaosbench exercises the chaos matrix through the CLI
// dispatcher at a tiny scale: a clean cell succeeds and exports CSV.
func TestRunChaosbench(t *testing.T) {
	dir := t.TempDir()
	opts := experiments.ChaosbenchOpts{Seeds: []int64{1}, Profiles: []string{"straggler"}}
	if _, err := run(io.Discard, "chaosbench", 0.15, 0, 8, 16, dir, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "chaosbench.csv")); err != nil {
		t.Fatalf("chaosbench.csv not exported: %v", err)
	}
}

// TestWriteBench checks the BENCH_<rev>.json shape.
func TestWriteBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	rec := benchRecord{
		Rev: "abc123", Workers: 4, GoMaxProc: 8, Scale: 1,
		Scenarios: []benchEntry{{Name: "detbench/wordcount", VirtualS: 12.5, WallS: 0.03}},
	}
	if err := writeBench(path, rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rev != rec.Rev || len(got.Scenarios) != 1 || got.Scenarios[0].Name != rec.Scenarios[0].Name {
		t.Fatalf("round-trip = %+v", got)
	}
}
