package main

import (
	"io"
	"strings"
	"testing"
)

func TestNamesCoverAllExperiments(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"}
	got := names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(io.Discard, "fig99", 1, 0, 8, "")
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFastExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig4"} {
		if err := run(io.Discard, name, 1, 2, 6, ""); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunWithCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run(io.Discard, "fig2", 1, 2, 6, dir); err != nil {
		t.Fatal(err)
	}
}
