// Command tracegen generates synthetic spot-price traces and reports
// their policy-relevant statistics (MTTF-versus-bid, average price paid,
// revocation counts), substituting for the EC2 price-history feeds the
// paper analyzes.
//
// Usage:
//
//	tracegen -profile us-west-2c -hours 720 -out trace.csv
//	tracegen -list
//	tracegen -profile sa-east-1a -analyze
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"flint/internal/simclock"
	"flint/internal/trace"
)

func main() {
	var (
		profileName = flag.String("profile", "us-west-2c", "market profile (see -list)")
		hours       = flag.Float64("hours", 24*30, "trace duration in hours")
		stepSec     = flag.Float64("step", 60, "sample interval in seconds")
		seed        = flag.Int64("seed", 42, "generator seed")
		out         = flag.String("out", "", "write CSV to this file (default: stdout if not analyzing)")
		analyze     = flag.Bool("analyze", false, "print bid-sweep statistics instead of the trace")
		list        = flag.Bool("list", false, "list available profiles")
		importJSON  = flag.String("import", "", "analyze real AWS describe-spot-price-history JSON from this file instead of generating")
	)
	flag.Parse()

	if *importJSON != "" {
		if err := analyzeImport(*importJSON, *stepSec); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	profiles := map[string]trace.Profile{
		"us-west-2c": trace.USWest2c(),
		"eu-west-1c": trace.EUWest1c(),
		"sa-east-1a": trace.SAEast1a(),
	}
	for _, p := range trace.BidStudyProfiles() {
		profiles[p.Name] = p
	}
	if *list {
		names := make([]string, 0, len(profiles))
		for name := range profiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := profiles[name]
			fmt.Printf("%-14s on-demand $%.3f/hr, base %.0f%%, spikes 1/%.0f h\n",
				name, p.OnDemand, 100*p.BaseFrac, 1/p.SpikesPerHour)
		}
		return
	}
	p, ok := profiles[*profileName]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown profile %q (use -list)\n", *profileName)
		os.Exit(2)
	}
	tr := p.Generate(*seed, *hours, *stepSec)

	if *analyze {
		fmt.Printf("profile %s: %d samples over %.0f h, mean price $%.4f/hr (on-demand $%.3f)\n",
			p.Name, tr.Len(), *hours, tr.MeanPrice(), p.OnDemand)
		fmt.Println("bid(xOD)   MTTF(h)   avg $/hr   revocations   uptime")
		for _, ratio := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0} {
			st := tr.AnalyzeBid(ratio * p.OnDemand)
			mttf := st.MTTF / simclock.Hour
			mttfStr := fmt.Sprintf("%9.1f", mttf)
			if math.IsInf(mttf, 1) {
				mttfStr = "      inf"
			}
			fmt.Printf("%7.2f %s   %8.4f   %11d   %5.1f%%\n",
				ratio, mttfStr, st.AvgPrice, st.Revocations, 100*st.UpFraction)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// analyzeImport loads real AWS spot-price-history JSON and prints each
// market's statistics at an on-demand-style reference bid (its own
// maximum observed price band is unknown, so the sweep is absolute).
func analyzeImport(path string, stepSec float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	markets, err := trace.ImportSpotPriceHistory(f, stepSec)
	if err != nil {
		return err
	}
	for _, m := range markets {
		tr := m.Trace
		fmt.Printf("%s: %d samples over %.1f h from %s, mean $%.4f/hr\n",
			m.Name(), tr.Len(), tr.Duration()/simclock.Hour, m.Start.Format("2006-01-02"), tr.MeanPrice())
		fmt.Println("  bid($/hr)  MTTF(h)   avg $/hr   revocations   uptime")
		base := tr.MeanPrice()
		for _, mult := range []float64{1.5, 2, 4, 8, 16} {
			bid := base * mult
			st := tr.AnalyzeBid(bid)
			mttf := st.MTTF / simclock.Hour
			mttfStr := fmt.Sprintf("%8.1f", mttf)
			if math.IsInf(mttf, 1) {
				mttfStr = "     inf"
			}
			fmt.Printf("  %8.4f %s   %8.4f   %11d   %5.1f%%\n",
				bid, mttfStr, st.AvgPrice, st.Revocations, 100*st.UpFraction)
		}
	}
	return nil
}
