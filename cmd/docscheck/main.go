// Command docscheck keeps the prose honest: it scans README.md,
// DESIGN.md and docs/*.md for references to repository artifacts —
// file paths, command-line flags, flint_* metric names, and relative
// markdown links — and exits non-zero if any of them are dead. CI runs
// it so a renamed flag, deleted file or retired metric cannot survive
// in the documentation.
//
// What counts as a reference (inline `code spans` and [links](…) only;
// fenced code blocks are ignored as free-form shell):
//
//   - a span that looks like a path (contains “/” or has a known file
//     extension) must exist in the repository,
//   - a span of the form -flag must be defined by some command under
//     cmd/ (or be a well-known go-tool flag),
//   - a span naming a flint_* metric must be registered somewhere in
//     the source; a trailing “_” or “*” makes it a prefix match,
//   - a relative markdown link must resolve from the linking document.
//
// The tool is stdlib-only, like everything else in the module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// goToolFlags are flags that belong to the go toolchain (or other
// standard tools) rather than to a command under cmd/, so documentation
// may reference them freely.
var goToolFlags = map[string]bool{
	"race": true, "run": true, "bench": true, "benchtime": true,
	"count": true, "short": true, "v": true, "timeout": true,
	"cover": true, "coverprofile": true, "cpuprofile": true,
	"memprofile": true, "l": true, "w": true, "json": true,
}

var (
	spanRe    = regexp.MustCompile("`([^`]+)`")
	linkRe    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	flagRe    = regexp.MustCompile(`^-[a-z][a-z0-9-]*$`)
	metricRe  = regexp.MustCompile(`^flint_[a-z0-9_]+[_*]?$`)
	pathRe    = regexp.MustCompile(`^[A-Za-z0-9._/:-]+$`)
	lineRefRe = regexp.MustCompile(`^([^:]+):\d+`)
	extRe     = regexp.MustCompile(`\.(go|md|json|ya?ml|sh|csv|txt)$`)
	// flagDefRe matches flag definitions in cmd/ sources:
	// flag.String("name", …), flag.IntVar(&v, "name", …).
	flagDefRe = regexp.MustCompile(`flag\.[A-Za-z0-9]+\(\s*(?:&[A-Za-z0-9_.]+,\s*)?"([^"]+)"`)
	// metricDefRe harvests registered metric names from the source.
	metricDefRe = regexp.MustCompile(`flint_[a-z0-9_]+`)
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	docs, err := docFiles(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	flags, err := definedFlags(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	metrics, err := definedMetrics(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	var dead []string
	for _, doc := range docs {
		d, err := checkDoc(*root, doc, flags, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		dead = append(dead, d...)
	}
	if len(dead) > 0 {
		for _, d := range dead {
			fmt.Fprintln(os.Stderr, d)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d dead reference(s) across %d documents\n", len(dead), len(docs))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d documents clean (%d flags, %d metrics known)\n", len(docs), len(flags), len(metrics))
}

// docFiles returns the documents under check: README.md, DESIGN.md and
// everything in docs/, as root-relative paths.
func docFiles(root string) ([]string, error) {
	var out []string
	for _, name := range []string{"README.md", "DESIGN.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			out = append(out, name)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			out = append(out, filepath.Join("docs", e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// definedFlags scans every Go file under cmd/ for flag definitions.
func definedFlags(root string) (map[string]bool, error) {
	out := map[string]bool{}
	err := filepath.WalkDir(filepath.Join(root, "cmd"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			out[m[1]] = true
		}
		return nil
	})
	return out, err
}

// definedMetrics harvests every flint_* name from the non-test source.
func definedMetrics(root string) (map[string]bool, error) {
	out := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricDefRe.FindAllString(string(data), -1) {
			out[m] = true
		}
		return nil
	})
	return out, err
}

// checkDoc scans one document and returns its dead references as
// "file:line: message" strings.
func checkDoc(root, doc string, flags, metrics map[string]bool) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, doc))
	if err != nil {
		return nil, err
	}
	var dead []string
	report := func(line int, format string, args ...any) {
		dead = append(dead, fmt.Sprintf("%s:%d: %s", doc, line, fmt.Sprintf(format, args...)))
	}
	fenced := false
	for i, line := range strings.Split(string(data), "\n") {
		n := i + 1
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(root, filepath.Dir(doc), target)
			// Targets escaping the repository (GitHub's ../../actions
			// badge idiom) cannot be verified locally.
			if rel, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rel, "..") {
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				report(n, "dead link %q", m[1])
			}
		}
		for _, m := range spanRe.FindAllStringSubmatch(line, -1) {
			checkSpan(root, m[1], n, flags, metrics, report)
		}
	}
	return dead, nil
}

// checkSpan classifies one inline code span and verifies it if it looks
// like a flag, a metric name, or a repository path. Anything else
// (identifiers, shell fragments, math) is ignored.
func checkSpan(root, span string, line int, flags, metrics map[string]bool,
	report func(line int, format string, args ...any)) {
	tok := strings.Fields(span)
	if len(tok) == 0 {
		return
	}
	head := tok[0]
	switch {
	case flagRe.MatchString(strings.SplitN(head, "=", 2)[0]) && !strings.Contains(head, "/"):
		name := strings.TrimPrefix(strings.SplitN(head, "=", 2)[0], "-")
		if !flags[name] && !goToolFlags[name] {
			report(line, "flag %q is not defined by any command under cmd/", head)
		}
	case metricRe.MatchString(head):
		if strings.HasSuffix(head, "*") || strings.HasSuffix(head, "_") {
			prefix := strings.TrimSuffix(head, "*")
			for m := range metrics {
				if strings.HasPrefix(m, prefix) {
					return
				}
			}
			report(line, "no metric with prefix %q is registered in the source", head)
		} else if !metrics[head] {
			report(line, "metric %q is not registered in the source", head)
		}
	case len(tok) == 1 && pathRe.MatchString(head) &&
		(strings.Contains(head, "/") || extRe.MatchString(head)):
		p := strings.TrimPrefix(head, "./")
		p = strings.TrimSuffix(p, "/...")
		p = strings.TrimSuffix(p, "/")
		// `file.go:123` clickable references keep only the path part;
		// anything else with a colon (URLs, key: value) is not a path.
		if m := lineRefRe.FindStringSubmatch(p); m != nil {
			p = m[1]
		}
		if p == "" || strings.Contains(p, "*") || strings.Contains(p, ":") {
			return
		}
		// Import paths carry the module name: flint/internal/obs.
		p = strings.TrimPrefix(p, "flint/")
		if !strings.Contains(p, "/") {
			// A bare filename: source and doc names must exist somewhere
			// in the tree; other extensions (.json, .txt, .csv) name
			// run artifacts, not repository files.
			if !strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, ".md") {
				return
			}
			if !repoBasenames(root)[p] {
				report(line, "file %q does not exist anywhere in the repository", head)
			}
			return
		}
		// Only slash-paths rooted at a real top-level directory are repo
		// references; everything else (`math/rand`, `go/ast`,
		// `golang.org/x/tools`) is an external package path.
		if !topLevelDirs(root)[p[:strings.IndexByte(p, '/')]] {
			return
		}
		if _, err := os.Stat(filepath.Join(root, p)); err != nil {
			report(line, "path %q does not exist in the repository", head)
		}
	}
}

var (
	basenamesCache map[string]bool
	topDirsCache   map[string]bool
)

// repoBasenames returns (and caches) the set of file basenames in the
// repository, for verifying bare `file.go` references.
func repoBasenames(root string) map[string]bool {
	if basenamesCache != nil {
		return basenamesCache
	}
	basenamesCache = map[string]bool{}
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		basenamesCache[d.Name()] = true
		return nil
	})
	return basenamesCache
}

// topLevelDirs returns (and caches) the repository's top-level directory
// names, which anchor every checkable slash-path.
func topLevelDirs(root string) map[string]bool {
	if topDirsCache != nil {
		return topDirsCache
	}
	topDirsCache = map[string]bool{}
	entries, err := os.ReadDir(root)
	if err != nil {
		return topDirsCache
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != ".git" {
			topDirsCache[e.Name()] = true
		}
	}
	return topDirsCache
}
