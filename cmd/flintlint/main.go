// Command flintlint runs Flint's project-specific determinism and
// safety checks over every package in the module (docs/LINT.md).
//
//	go run ./cmd/flintlint ./...
//
// Exit status: 0 when every finding is covered by the committed
// baseline, 1 on any new finding or stale baseline entry, 2 on a usage
// or load error. The package pattern argument is accepted for muscle-
// memory compatibility with go vet; the analyzer always loads the whole
// module containing the working directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flint/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		baselinePath  = flag.String("baseline", "", "baseline file (default <module root>/.flintlint-baseline)")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the baseline to accept every current finding")
		listAll       = flag.Bool("all", false, "print baselined findings too (marked [baselined])")
		checksFlag    = flag.String("checks", "", "comma-separated subset of checks to run (default all)")
		catalog       = flag.Bool("catalog", false, "print the check catalog and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: flintlint [flags] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *catalog {
		for _, c := range lint.Checks() {
			fmt.Printf("%-20s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flintlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flintlint: %v\n", err)
		return 2
	}

	opts := lint.Options{}
	var selected map[string]bool // nil = full registry
	if *checksFlag != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*checksFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		selected = make(map[string]bool)
		for _, c := range lint.Checks() {
			if want[c.Name] {
				opts.Checks = append(opts.Checks, c)
				selected[c.Name] = true
				delete(want, c.Name)
			}
		}
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "flintlint: unknown check(s) %s; registered checks are:\n", strings.Join(unknown, ", "))
			for _, c := range lint.Checks() {
				fmt.Fprintf(os.Stderr, "  %-20s %s\n", c.Name, c.Doc)
			}
			return 2
		}
	}

	findings, err := lint.AnalyzeModule(root, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flintlint: %v\n", err)
		return 2
	}

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, ".flintlint-baseline")
	}

	if *writeBaseline {
		if selected != nil {
			fmt.Fprintln(os.Stderr, "flintlint: -write-baseline with -checks would drop every other check's entries; run it without -checks")
			return 2
		}
		if err := os.WriteFile(bpath, lint.FormatBaseline(findings), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "flintlint: %v\n", err)
			return 2
		}
		fmt.Printf("flintlint: wrote %d finding(s) to %s\n", len(findings), bpath)
		return 0
	}

	base := lint.ParseBaseline(nil)
	if data, err := os.ReadFile(bpath); err == nil {
		base = lint.ParseBaseline(data)
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "flintlint: %v\n", err)
		return 2
	}
	if selected != nil {
		// A subset run cannot produce findings for unselected checks;
		// their baseline entries are out of scope, not stale.
		base.Restrict(selected)
	}

	fresh, stale := base.Apply(findings)
	if *listAll {
		freshSet := make(map[string]int)
		for _, f := range fresh {
			freshSet[f.String()]++
		}
		for _, f := range findings {
			if freshSet[f.String()] > 0 {
				freshSet[f.String()]--
				fmt.Println(f)
			} else {
				fmt.Printf("%s [baselined]\n", f)
			}
		}
	} else {
		for _, f := range fresh {
			fmt.Println(f)
		}
	}
	for _, s := range stale {
		fmt.Printf("stale baseline entry (fixed? regenerate with -write-baseline): %s\n", s)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "flintlint: %d new finding(s), %d stale baseline entr%s\n",
			len(fresh), len(stale), plural(len(stale)))
		return 1
	}
	if n := base.Len(); n > 0 {
		fmt.Printf("flintlint: clean (%d baselined finding(s) accepted)\n", n)
	} else {
		fmt.Println("flintlint: clean")
	}
	return 0
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
