// Command flint runs one of the paper's workloads on a simulated cluster
// of transient servers under a chosen server-selection and checkpointing
// policy, and reports running time and cost against an on-demand
// baseline — a single-shot version of the managed service the paper
// describes.
//
// Usage:
//
//	flint -workload pagerank -mode batch -nodes 10
//	flint -workload tpch -mode interactive -queries 5
//	flint -workload kmeans -mode on-demand -checkpoint none
package main

import (
	"flag"
	"fmt"
	"os"

	"flint/internal/core"
	"flint/internal/market"
	"flint/internal/obs"
	"flint/internal/rdd"
	"flint/internal/simclock"
	"flint/internal/trace"
	"flint/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "wordcount", "workload: wordcount | pagerank | kmeans | als | tpch")
		mode     = flag.String("mode", "batch", "server selection: batch | interactive | on-demand")
		ckpt     = flag.String("checkpoint", "flint", "checkpointing: flint | none | system")
		nodes    = flag.Int("nodes", 10, "cluster size")
		pools    = flag.Int("pools", 10, "number of spot markets to simulate")
		seed     = flag.Int64("seed", 1, "market seed")
		queries  = flag.Int("queries", 3, "interactive queries to run (tpch only)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace_event JSON file of the run to this path")
		workers  = flag.Int("workers", 0, "engine worker-pool width for task execution (0 = GOMAXPROCS; 1 = serial); any value produces identical results")
	)
	flag.Parse()
	if err := run(*wl, *mode, *ckpt, *nodes, *pools, *seed, *queries, *workers, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "flint: %v\n", err)
		os.Exit(1)
	}
}

// writeTrace dumps an observability bundle's event buffer as Chrome
// trace_event JSON, loadable in Perfetto (ui.perfetto.dev).
func writeTrace(path string, o *obs.Obs) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if d := o.Tracer.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "flint: trace ring buffer overflowed; oldest %d events dropped\n", d)
	}
	fmt.Printf("trace: %d events written to %s\n", o.Tracer.Len(), path)
	return nil
}

func run(wl, mode, ckptMode string, nodes, pools int, seed int64, queries, workers int, traceOut string) error {
	profiles := trace.PoolSet(pools, seed)
	exch, err := market.SpotExchange(profiles, seed+1, 24*7, 24*30, market.BillPerSecond)
	if err != nil {
		return err
	}
	ctx := rdd.NewContext(2 * nodes)

	spec := core.DefaultSpec()
	spec.Cluster.Size = nodes
	spec.Engine.Workers = workers
	switch mode {
	case "batch":
		spec.Mode = core.ModeBatch
	case "interactive":
		spec.Mode = core.ModeInteractive
	case "on-demand":
		spec.Mode = core.ModeOnDemand
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	switch ckptMode {
	case "flint":
		spec.Checkpoint = core.CkptFlint
	case "none":
		spec.Checkpoint = core.CkptNone
	case "system":
		spec.Checkpoint = core.CkptSystemLevel
		spec.FixedInterval = 300
	default:
		return fmt.Errorf("unknown checkpoint mode %q", ckptMode)
	}

	var bundle *obs.Obs
	if traceOut != "" {
		bundle = obs.New(obs.Options{RingCapacity: 1 << 18})
		spec.Obs = bundle
	}

	f, err := core.Launch(exch, ctx, spec)
	if err != nil {
		return err
	}
	defer f.Stop()

	fmt.Printf("cluster up: %d nodes, mode=%s, checkpoint=%s\n", nodes, mode, ckptMode)
	for _, n := range f.Cluster.LiveNodes() {
		fmt.Printf("  node %2d from %s\n", n.ID, n.Pool)
	}

	switch wl {
	case "wordcount":
		counts, res, err := workload.RunWordCount(f, ctx, workload.WordCountConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("wordcount: %d distinct words in %.1f virtual seconds\n", len(counts), res.Latency())
	case "pagerank":
		rep, err := workload.RunPageRank(f, ctx, workload.PageRankConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("pagerank: %d jobs, %.1f virtual seconds, %d tasks\n", rep.Jobs, rep.RunningTime, rep.Stats.TasksLaunched)
	case "kmeans":
		rep, err := workload.RunKMeans(f, ctx, workload.KMeansConfig{})
		if err != nil {
			return err
		}
		out := rep.Outcome.(workload.KMeansResult)
		fmt.Printf("kmeans: cost %.1f after %d jobs, %.1f virtual seconds\n", out.Cost, rep.Jobs, rep.RunningTime)
	case "als":
		rep, err := workload.RunALS(f, ctx, workload.ALSConfig{})
		if err != nil {
			return err
		}
		out := rep.Outcome.(workload.ALSResult)
		fmt.Printf("als: RMSE %.3f after %d jobs, %.1f virtual seconds\n", out.RMSE, rep.Jobs, rep.RunningTime)
	case "tpch":
		tp := workload.BuildTPCH(ctx, workload.TPCHConfig{})
		loadT, err := tp.Load(f)
		if err != nil {
			return err
		}
		fmt.Printf("tpch: tables loaded in %.1f virtual seconds\n", loadT)
		for q := 0; q < queries; q++ {
			switch q % 3 {
			case 0:
				_, res, err := tp.Q3(f, q, "BUILDING", 1200)
				if err != nil {
					return err
				}
				fmt.Printf("  Q3 → %.1f s\n", res.Latency())
			case 1:
				_, res, err := tp.Q1(f, q, 2000)
				if err != nil {
					return err
				}
				fmt.Printf("  Q1 → %.1f s\n", res.Latency())
			default:
				_, res, err := tp.Q6(f, q, 365, 730, 0.02, 0.06, 25)
				if err != nil {
					return err
				}
				fmt.Printf("  Q6 → %.1f s\n", res.Latency())
			}
			f.Clock.Advance(60) // think time
		}
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	cost := f.Cost()
	hours := f.Clock.Now() / simclock.Hour
	odRate := exch.Pool("on-demand").OnDemand
	odCost := float64(nodes) * odRate * hours
	fmt.Printf("cost: $%.4f compute + $%.4f storage = $%.4f total over %.2f h\n",
		cost.Compute, cost.Storage, cost.Total, hours)
	if odCost > 0 {
		fmt.Printf("equivalent on-demand cost: $%.4f (savings %.0f%%)\n", odCost, 100*(1-cost.Total/odCost))
	}
	fmt.Printf("revocations: %d, replacements: %d, checkpoint tasks: %d\n",
		f.Cluster.RevocationCount, f.Cluster.ReplacementCount, f.Engine.Snapshot().CheckpointTasks)
	if traceOut != "" {
		return writeTrace(traceOut, bundle)
	}
	return nil
}
