// Command flintsh is an interactive shell over a Flint deployment — the
// equivalent of the Spark shell / SQL console the paper's BIDI users
// drive ("users interact with Flint via the command-line to submit,
// monitor, and interact with their Spark programs", §4).
//
// It launches a simulated transient cluster, loads the TPC-H tables, and
// accepts commands:
//
//	q1 [cutoff]          pricing-summary query
//	q3 [segment] [date]  shipping-priority query
//	q6                   revenue-forecast query
//	revoke [n]           revoke n servers (default 1), with replacement
//	nodes                list live servers and their markets
//	markets              show the current market snapshot
//	stats                session latency statistics
//	cost                 cost report vs on-demand
//	think <seconds>      advance virtual time
//	help, exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"

	"flint/internal/core"
	"flint/internal/market"
	"flint/internal/policy"
	"flint/internal/rdd"
	"flint/internal/simclock"
	"flint/internal/stats"
	"flint/internal/trace"
	"flint/internal/webui"
	"flint/internal/workload"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10, "cluster size")
		mode     = flag.String("mode", "interactive", "selection: batch | interactive | on-demand")
		seed     = flag.Int64("seed", 1, "market seed")
		httpAddr = flag.String("http", "", "serve the JSON monitoring UI on this address (e.g. :8080)")
	)
	flag.Parse()
	if err := run(*nodes, *mode, *seed, *httpAddr); err != nil {
		fmt.Fprintf(os.Stderr, "flintsh: %v\n", err)
		os.Exit(1)
	}
}

type shell struct {
	f    *core.Flint
	sess *core.Session
	tp   *workload.TPCH
	exch *market.Exchange
	qid  int
	lats []float64
}

func run(nodes int, mode string, seed int64, httpAddr string) error {
	profiles := trace.PoolSet(12, seed)
	exch, err := market.SpotExchange(profiles, seed+1, 24*7, 24*90, market.BillPerSecond)
	if err != nil {
		return err
	}
	spec := core.DefaultSpec()
	spec.Cluster.Size = nodes
	switch mode {
	case "batch":
		spec.Mode = core.ModeBatch
	case "interactive":
		spec.Mode = core.ModeInteractive
	case "on-demand":
		spec.Mode = core.ModeOnDemand
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	ctx := rdd.NewContext(2 * nodes)
	f, err := core.Launch(exch, ctx, spec)
	if err != nil {
		return err
	}
	defer f.Stop()
	sess, err := core.NewSession(f)
	if err != nil {
		return err
	}

	sh := &shell{f: f, sess: sess, exch: exch, qid: 1000}
	if httpAddr != "" {
		// Monitoring UI; queried between commands (the simulation only
		// advances while a shell command runs).
		//lint:allow goroutine-discipline HTTP serving only reads engine snapshots between commands; it never mutates simulation state
		go func() {
			if err := http.ListenAndServe(httpAddr, webui.New(f, exch)); err != nil {
				fmt.Fprintf(os.Stderr, "flintsh: http: %v\n", err)
			}
		}()
		fmt.Printf("monitoring UI on http://%s/status\n", httpAddr)
	}
	fmt.Printf("flint shell — %d transient servers (%s mode). Loading TPC-H tables...\n", nodes, mode)
	sh.tp = workload.BuildTPCH(ctx, workload.TPCHConfig{})
	loadT, err := sh.tp.Load(f)
	if err != nil {
		return err
	}
	fmt.Printf("tables cached in %.1f virtual seconds. Type 'help' for commands.\n", loadT)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("flint> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "exit" || line == "quit" {
			break
		}
		if line != "" {
			if err := sh.dispatch(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("flint> ")
	}
	return sc.Err()
}

func (sh *shell) dispatch(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	sh.qid++
	switch cmd {
	case "help":
		fmt.Println("q1 [cutoff] | q3 [segment] [date] | q6 | revoke [n] | nodes | markets | stats | cost | think <s> | exit")
	case "q1":
		cutoff := 2000
		if len(args) > 0 {
			cutoff = atoiOr(args[0], cutoff)
		}
		rows, res, err := sh.tp.Q1(sh.f, sh.qid, cutoff)
		if err != nil {
			return err
		}
		sh.record(res.Latency())
		for _, r := range rows {
			fmt.Printf("  %c%c  qty %10.0f  base %14.2f  count %6d\n", r.Flag, r.Status, r.SumQty, r.SumBase, r.Count)
		}
		fmt.Printf("  → %.1f virtual seconds\n", res.Latency())
	case "q3":
		segment, date := "BUILDING", 1200
		if len(args) > 0 {
			segment = strings.ToUpper(args[0])
		}
		if len(args) > 1 {
			date = atoiOr(args[1], date)
		}
		rows, res, err := sh.tp.Q3(sh.f, sh.qid, segment, date)
		if err != nil {
			return err
		}
		sh.record(res.Latency())
		for i, r := range rows {
			if i >= 5 {
				fmt.Printf("  ... %d more\n", len(rows)-5)
				break
			}
			fmt.Printf("  order %6d  revenue %12.2f\n", r.OrderKey, r.Revenue)
		}
		fmt.Printf("  → %.1f virtual seconds\n", res.Latency())
	case "q6":
		total, res, err := sh.tp.Q6(sh.f, sh.qid, 365, 730, 0.02, 0.06, 25)
		if err != nil {
			return err
		}
		sh.record(res.Latency())
		fmt.Printf("  forecast revenue %.2f  → %.1f virtual seconds\n", total, res.Latency())
	case "revoke":
		n := 1
		if len(args) > 0 {
			n = atoiOr(args[0], 1)
		}
		live := sh.f.Cluster.LiveNodes()
		for i := 0; i < n && i < len(live); i++ {
			if err := sh.f.Cluster.RevokeNow(live[i].ID, true); err != nil {
				return err
			}
			fmt.Printf("  revoked node %d (%s)\n", live[i].ID, live[i].Pool)
		}
	case "nodes":
		for _, n := range sh.f.Cluster.LiveNodes() {
			fmt.Printf("  node %2d  %s\n", n.ID, n.Pool)
		}
		if p := sh.f.Cluster.PendingNodes(); len(p) > 0 {
			fmt.Printf("  (%d replacements on the way)\n", len(p))
		}
	case "markets":
		for _, mi := range policy.Snapshot(sh.exch, sh.f.Clock.Now(), policy.DefaultParams()) {
			mttf := "  inf"
			if !math.IsInf(mi.MTTF, 1) {
				mttf = fmt.Sprintf("%5.0fh", mi.MTTF/simclock.Hour)
			}
			fmt.Printf("  %-28s %s  $%.4f/hr  E[T]/T %.3f\n", mi.Pool.Name, mttf, mi.AvgPrice, mi.Factor)
		}
	case "stats":
		st := stats.Summarize(sh.lats)
		if st.N == 0 {
			fmt.Println("  no queries yet")
			break
		}
		fmt.Printf("  %d queries: mean %.1fs  p95 %.1fs  max %.1fs  (consistency = max/mean %.1fx)\n",
			st.N, st.Mean, st.P95, st.Max, st.Max/st.Mean)
	case "cost":
		c := sh.f.Cost()
		hours := sh.f.Clock.Now() / simclock.Hour
		od := sh.exch.Pool("on-demand").OnDemand * float64(len(sh.f.Cluster.LiveNodes())) * hours
		fmt.Printf("  $%.4f total (compute $%.4f, storage $%.6f) over %.2f virtual hours\n", c.Total, c.Compute, c.Storage, hours)
		if od > 0 {
			fmt.Printf("  on-demand equivalent: $%.4f (savings %.0f%%)\n", od, 100*(1-c.Total/od))
		}
	case "think":
		if len(args) == 0 {
			return fmt.Errorf("think <seconds>")
		}
		s, err := strconv.ParseFloat(args[0], 64)
		if err != nil || s < 0 {
			return fmt.Errorf("bad duration %q", args[0])
		}
		sh.sess.Think(s)
		fmt.Printf("  t = %.0f s\n", sh.f.Clock.Now())
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return nil
}

// record notes a query latency for the stats command.
func (sh *shell) record(lat float64) {
	sh.lats = append(sh.lats, lat)
}

func atoiOr(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}
