package main

import (
	"strings"
	"testing"
)

func anchorRec() benchRecord {
	return benchRecord{
		Rev: "a7c1211",
		Scenarios: []benchEntry{
			{Name: "detbench/wordcount", VirtualS: 11.760655641555786, WallS: 2.0,
				OutcomeFNV: "27a3aed45e3b4211", TraceFNV: "492240aae7972f7b"},
			{Name: "detbench/pagerank-revoke", VirtualS: 275.25269763271007, WallS: 30.0},
		},
	}
}

func TestDiffRecordsNoDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Rev = "deadbee"
	fresh.Scenarios[0].WallS = 1.0 // wall changes never gate
	fresh.Scenarios[1].OutcomeFNV = "5c9b147d3c3c0a99"
	drift, report := diffRecords(anchorRec(), fresh, 0.10)
	if len(drift) != 0 {
		t.Fatalf("unexpected drift: %v", drift)
	}
	if !strings.Contains(report, "2.00x") {
		t.Fatalf("wall ratio missing from report:\n%s", report)
	}
	if !strings.Contains(report, "No drift") {
		t.Fatalf("no-drift summary missing:\n%s", report)
	}
	// Anchor without FNVs vs fresh with them: not gated, not drift.
	if !strings.Contains(report, "n/a") {
		t.Fatalf("FNV-less anchor comparison should be n/a:\n%s", report)
	}
}

func TestDiffRecordsVirtualDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios[0].VirtualS += 0.000001
	drift, report := diffRecords(anchorRec(), fresh, 0.10)
	if len(drift) != 1 || !strings.Contains(drift[0], "virtual makespan") {
		t.Fatalf("drift = %v", drift)
	}
	if !strings.Contains(report, "DRIFT") {
		t.Fatalf("report lacks DRIFT marker:\n%s", report)
	}
}

func TestDiffRecordsFNVDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios[0].OutcomeFNV = "0000000000000000"
	fresh.Scenarios[0].TraceFNV = "1111111111111111"
	drift, _ := diffRecords(anchorRec(), fresh, 0.10)
	if len(drift) != 2 {
		t.Fatalf("want outcome+trace drift, got %v", drift)
	}
}

func TestDiffRecordsMissingScenario(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios = fresh.Scenarios[:1]
	drift, _ := diffRecords(anchorRec(), fresh, 0.10)
	if len(drift) != 1 || !strings.Contains(drift[0], "missing") {
		t.Fatalf("drift = %v", drift)
	}
}

// columnarRecs returns an anchor/fresh pair that both carry alloc counts
// and both ran with the columnar data plane, so the allocs gate applies.
func columnarRecs(anchorAllocs, freshAllocs uint64) (benchRecord, benchRecord) {
	anchor := anchorRec()
	anchor.Columnar = true
	anchor.Scenarios[0].Allocs = anchorAllocs
	fresh := anchorRec()
	fresh.Columnar = true
	fresh.Scenarios[0].Allocs = freshAllocs
	return anchor, fresh
}

func TestDiffRecordsAllocsWithinTolerance(t *testing.T) {
	anchor, fresh := columnarRecs(1000, 1100) // exactly at the +10% limit
	drift, report := diffRecords(anchor, fresh, 0.10)
	if len(drift) != 0 {
		t.Fatalf("allocs at the tolerance limit must not gate: %v", drift)
	}
	if !strings.Contains(report, "0.91x") {
		t.Fatalf("allocs ratio missing from report:\n%s", report)
	}
}

func TestDiffRecordsAllocsRegression(t *testing.T) {
	anchor, fresh := columnarRecs(1000, 1101) // one past the +10% limit
	drift, report := diffRecords(anchor, fresh, 0.10)
	if len(drift) != 1 || !strings.Contains(drift[0], "allocations regressed") {
		t.Fatalf("drift = %v", drift)
	}
	if !strings.Contains(report, "DRIFT (1000 → 1101)") {
		t.Fatalf("report lacks allocs DRIFT marker:\n%s", report)
	}
}

func TestDiffRecordsAllocsZeroTolerance(t *testing.T) {
	anchor, fresh := columnarRecs(1000, 1001)
	drift, _ := diffRecords(anchor, fresh, 0)
	if len(drift) != 1 || !strings.Contains(drift[0], "allocations regressed") {
		t.Fatalf("zero tolerance must gate any growth, drift = %v", drift)
	}
}

func TestDiffRecordsAllocsImprovementNeverGates(t *testing.T) {
	anchor, fresh := columnarRecs(1000, 400)
	drift, report := diffRecords(anchor, fresh, 0.10)
	if len(drift) != 0 {
		t.Fatalf("fewer allocations must not gate: %v", drift)
	}
	if !strings.Contains(report, "2.50x") {
		t.Fatalf("allocs ratio missing from report:\n%s", report)
	}
}

func TestDiffRecordsAllocsNotGatedOffColumnar(t *testing.T) {
	// Generic-path records are a different data plane: informational only.
	anchor, fresh := columnarRecs(1000, 5000)
	anchor.Columnar = false
	if drift, _ := diffRecords(anchor, fresh, 0.10); len(drift) != 0 {
		t.Fatalf("non-columnar anchor must not gate allocs: %v", drift)
	}
	anchor.Columnar = true
	fresh.Columnar = false
	if drift, _ := diffRecords(anchor, fresh, 0.10); len(drift) != 0 {
		t.Fatalf("non-columnar fresh record must not gate allocs: %v", drift)
	}
}

func TestDiffRecordsAllocsMissingCounts(t *testing.T) {
	// Records from before alloc accounting landed carry zero: n/a, no gate.
	anchor, fresh := columnarRecs(0, 5000)
	drift, report := diffRecords(anchor, fresh, 0.10)
	if len(drift) != 0 {
		t.Fatalf("anchor without allocs must not gate: %v", drift)
	}
	if !strings.Contains(report, "n/a") {
		t.Fatalf("missing allocs should render n/a:\n%s", report)
	}
}
