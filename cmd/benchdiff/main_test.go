package main

import (
	"strings"
	"testing"
)

func anchorRec() benchRecord {
	return benchRecord{
		Rev: "a7c1211",
		Scenarios: []benchEntry{
			{Name: "detbench/wordcount", VirtualS: 11.760655641555786, WallS: 2.0,
				OutcomeFNV: "27a3aed45e3b4211", TraceFNV: "492240aae7972f7b"},
			{Name: "detbench/pagerank-revoke", VirtualS: 275.25269763271007, WallS: 30.0},
		},
	}
}

func TestDiffRecordsNoDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Rev = "deadbee"
	fresh.Scenarios[0].WallS = 1.0 // wall changes never gate
	fresh.Scenarios[1].OutcomeFNV = "5c9b147d3c3c0a99"
	drift, report := diffRecords(anchorRec(), fresh)
	if len(drift) != 0 {
		t.Fatalf("unexpected drift: %v", drift)
	}
	if !strings.Contains(report, "2.00x") {
		t.Fatalf("wall ratio missing from report:\n%s", report)
	}
	if !strings.Contains(report, "No drift") {
		t.Fatalf("no-drift summary missing:\n%s", report)
	}
	// Anchor without FNVs vs fresh with them: not gated, not drift.
	if !strings.Contains(report, "n/a") {
		t.Fatalf("FNV-less anchor comparison should be n/a:\n%s", report)
	}
}

func TestDiffRecordsVirtualDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios[0].VirtualS += 0.000001
	drift, report := diffRecords(anchorRec(), fresh)
	if len(drift) != 1 || !strings.Contains(drift[0], "virtual makespan") {
		t.Fatalf("drift = %v", drift)
	}
	if !strings.Contains(report, "DRIFT") {
		t.Fatalf("report lacks DRIFT marker:\n%s", report)
	}
}

func TestDiffRecordsFNVDrift(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios[0].OutcomeFNV = "0000000000000000"
	fresh.Scenarios[0].TraceFNV = "1111111111111111"
	drift, _ := diffRecords(anchorRec(), fresh)
	if len(drift) != 2 {
		t.Fatalf("want outcome+trace drift, got %v", drift)
	}
}

func TestDiffRecordsMissingScenario(t *testing.T) {
	fresh := anchorRec()
	fresh.Scenarios = fresh.Scenarios[:1]
	drift, _ := diffRecords(anchorRec(), fresh)
	if len(drift) != 1 || !strings.Contains(drift[0], "missing") {
		t.Fatalf("drift = %v", drift)
	}
}
