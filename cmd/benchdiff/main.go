// Command benchdiff gates a freshly produced BENCH_<rev>.json against a
// committed anchor record (BENCH_a7c1211.json). It fails — exit 1 — when
// any anchored scenario drifted: a missing scenario, a virtual-makespan
// change, or an outcome/trace FNV change. Wall seconds are reported as a
// ratio table (markdown, suitable for $GITHUB_STEP_SUMMARY) but never
// gate: they measure the machine, not the engine.
//
// Heap allocations sit between those poles. They are deterministic for a
// fixed toolchain (the workloads are seeded and replayed), so when both
// records were produced with the columnar data plane enabled, the allocs
// column is enforced: a scenario whose allocation count grows past
// -allocs-tolerance (default 10%, absorbing Go-version churn) is drift.
// This is the bench-side twin of flintlint's hotalloc check — the static
// check catches boxing at the source, the gate catches whatever slips
// through at run time. Generic-path (columnar-off) records, and records
// from before alloc accounting landed, stay informational.
//
// Usage:
//
//	benchdiff -anchor BENCH_a7c1211.json -new BENCH_<rev>.json [-summary out.md]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchEntry mirrors cmd/flintbench's record line. FNV fields are empty
// in records written before the determinism fingerprints landed; the
// diff only gates fields both sides carry.
type benchEntry struct {
	Name        string  `json:"name"`
	VirtualS    float64 `json:"virtual_s"`
	WallS       float64 `json:"wall_s"`
	OutcomeFNV  string  `json:"outcome_fnv"`
	TraceFNV    string  `json:"trace_fnv"`
	TraceEvents int     `json:"trace_events"`
	Allocs      uint64  `json:"allocs"` // zero in records written before alloc accounting landed
}

type benchRecord struct {
	Rev       string       `json:"rev"`
	Workers   int          `json:"workers"`
	Scale     float64      `json:"scale"`
	Columnar  bool         `json:"columnar"`
	Scenarios []benchEntry `json:"scenarios"`
}

func readRecord(path string) (benchRecord, error) {
	var rec benchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// diffRecords compares every anchored scenario against the fresh record,
// returning the drift findings and a markdown report with the
// virtual-makespan and wall-seconds ratio table. allocsTolerance is the
// fractional allocation growth permitted before a columnar scenario's
// allocs count gates (0.10 = +10%); it only applies when both records
// carry alloc counts and both ran with the columnar data plane.
func diffRecords(anchor, fresh benchRecord, allocsTolerance float64) (drift []string, report string) {
	freshBy := make(map[string]benchEntry, len(fresh.Scenarios))
	for _, sc := range fresh.Scenarios {
		freshBy[sc.Name] = sc
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### bench-regression: %s vs anchor %s\n\n", orDash(fresh.Rev), orDash(anchor.Rev))
	b.WriteString("| scenario | virtual_s | outcome_fnv | trace_fnv | anchor wall_s | wall_s | wall ratio | allocs ratio |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, a := range anchor.Scenarios {
		f, ok := freshBy[a.Name]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: scenario missing from fresh record", a.Name))
			fmt.Fprintf(&b, "| %s | MISSING | — | — | %.3f | — | — | — |\n", a.Name, a.WallS)
			continue
		}
		status := func(anchorV, freshV, label string) string {
			if anchorV == "" || freshV == "" {
				return "n/a"
			}
			if anchorV != freshV {
				drift = append(drift, fmt.Sprintf("%s: %s drifted: anchor %s, fresh %s", a.Name, label, anchorV, freshV))
				return fmt.Sprintf("DRIFT (%s → %s)", anchorV, freshV)
			}
			return "ok " + freshV
		}
		virt := "ok"
		if f.VirtualS != a.VirtualS {
			drift = append(drift, fmt.Sprintf("%s: virtual makespan drifted: anchor %v, fresh %v", a.Name, a.VirtualS, f.VirtualS))
			virt = fmt.Sprintf("DRIFT (%v → %v)", a.VirtualS, f.VirtualS)
		} else {
			virt = fmt.Sprintf("ok %v", f.VirtualS)
		}
		ratio := "—"
		if a.WallS > 0 && f.WallS > 0 {
			ratio = fmt.Sprintf("%.2fx", a.WallS/f.WallS)
		}
		// Allocs gate for columnar runs (within tolerance); otherwise the
		// ratio is informational. "n/a" covers anchors recorded before
		// alloc accounting landed.
		allocs := "n/a"
		if a.Allocs > 0 && f.Allocs > 0 {
			allocs = fmt.Sprintf("%.2fx", float64(a.Allocs)/float64(f.Allocs))
			if anchor.Columnar && fresh.Columnar {
				limit := uint64(float64(a.Allocs) * (1 + allocsTolerance))
				if f.Allocs > limit {
					drift = append(drift, fmt.Sprintf("%s: allocations regressed: anchor %d, fresh %d (limit %d at %+.0f%% tolerance)",
						a.Name, a.Allocs, f.Allocs, limit, allocsTolerance*100))
					allocs = fmt.Sprintf("DRIFT (%d → %d)", a.Allocs, f.Allocs)
				}
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %.3f | %s | %s |\n",
			a.Name, virt,
			status(a.OutcomeFNV, f.OutcomeFNV, "outcome FNV"),
			status(a.TraceFNV, f.TraceFNV, "trace FNV"),
			a.WallS, f.WallS, ratio, allocs)
	}
	if len(drift) == 0 {
		b.WriteString("\nNo drift: every anchored scenario is byte-identical (wall ratio >1 means faster than the anchor machine run; allocs ratio >1 means fewer heap allocations; allocation growth gates for columnar records).\n")
	} else {
		fmt.Fprintf(&b, "\n**%d drift finding(s)** — the data plane changed observable output.\n", len(drift))
	}
	return drift, b.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func main() {
	anchorPath := flag.String("anchor", "", "committed anchor record (e.g. BENCH_a7c1211.json)")
	freshPath := flag.String("new", "", "freshly produced record to gate")
	summary := flag.String("summary", "", "also append the markdown report to this file (e.g. $GITHUB_STEP_SUMMARY)")
	allocsTolerance := flag.Float64("allocs-tolerance", 0.10, "fractional allocation growth allowed before a columnar scenario's allocs count gates (0.10 = +10%)")
	flag.Parse()
	if *anchorPath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -anchor BENCH_a7c1211.json -new BENCH_<rev>.json [-summary out.md]")
		os.Exit(2)
	}
	anchor, err := readRecord(*anchorPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fresh, err := readRecord(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *allocsTolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -allocs-tolerance must be >= 0")
		os.Exit(2)
	}
	drift, report := diffRecords(anchor, fresh, *allocsTolerance)
	fmt.Print(report)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: summary: %v\n", err)
			os.Exit(2)
		}
		if _, err := f.WriteString(report); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchdiff: summary: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
	if len(drift) > 0 {
		for _, d := range drift {
			fmt.Fprintf(os.Stderr, "benchdiff: DRIFT: %s\n", d)
		}
		os.Exit(1)
	}
}
