package flint_test

import (
	"testing"

	"flint"
)

// The facade test doubles as the README quickstart: build markets, launch
// a cluster, run a program, read the bill.
func TestPublicAPIQuickstart(t *testing.T) {
	exch, err := flint.NewSpotExchange(flint.StandardEC2Profiles(), 1, 24*7, 24*30)
	if err != nil {
		t.Fatal(err)
	}
	ctx := flint.NewContext(8)
	spec := flint.DefaultSpec()
	spec.Cluster.Size = 5
	cl, err := flint.Launch(exch, ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	nums := ctx.Parallelize("nums", 8, 8, func(part int) []flint.Row {
		var out []flint.Row
		for i := part; i < 1000; i += 8 {
			out = append(out, i)
		}
		return out
	})
	sums := nums.
		Map("kv", func(r flint.Row) flint.Row { return flint.KV{K: r.(int) % 7, V: r.(int)} }).
		ReduceByKey("sum", 4, func(a, b flint.Row) flint.Row { return a.(int) + b.(int) })
	res, err := cl.RunJob(sums, flint.Collect)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("keys = %d, want 7", len(res.Rows))
	}
	total := 0
	for _, r := range res.Rows {
		total += r.(flint.KV).V.(int)
	}
	if total != 999*1000/2 {
		t.Fatalf("sum = %d", total)
	}
	if cost := cl.Cost(); cost.Total <= 0 {
		t.Errorf("cost = %+v", cost)
	}
}

func TestPublicWorkloads(t *testing.T) {
	exch, err := flint.NewSpotExchange(flint.PoolSet(6, 2), 3, 24*7, 24*7)
	if err != nil {
		t.Fatal(err)
	}
	ctx := flint.NewContext(8)
	spec := flint.DefaultSpec()
	spec.Cluster.Size = 4
	spec.Mode = flint.ModeInteractive
	cl, err := flint.Launch(exch, ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	counts, _, err := flint.RunWordCount(cl, ctx, flint.WordCountConfig{Docs: 50, WordsPerDoc: 10, Vocab: 20, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("no counts")
	}

	tp := flint.BuildTPCH(ctx, flint.TPCHConfig{Customers: 50, OrdersPerCust: 4, LinesPerOrder: 2, Parts: 4, TargetBytes: 64 << 20})
	if _, err := tp.Load(cl); err != nil {
		t.Fatal(err)
	}
	rows, _, err := tp.Q1(cl, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("Q1 empty")
	}
}
