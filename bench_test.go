package flint_test

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, as indexed in DESIGN.md. Each benchmark executes
// the corresponding experiment from internal/experiments (the same code
// behind cmd/flintbench) and reports its headline quantities as custom
// benchmark metrics, so `go test -bench=. -benchmem` regenerates the
// entire evaluation. See EXPERIMENTS.md for paper-versus-measured.

import (
	"io"
	"testing"

	"flint/internal/exec"
	"flint/internal/experiments"
)

// BenchmarkFig2Availability regenerates the availability CDFs and MTTFs
// of EC2 spot and GCE preemptible servers (paper Figure 2).
func BenchmarkFig2Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EC2[0].MTTFh, "us-west-2c-MTTF-h")
		b.ReportMetric(res.EC2[1].MTTFh, "eu-west-1c-MTTF-h")
		b.ReportMetric(res.EC2[2].MTTFh, "sa-east-1a-MTTF-h")
		b.ReportMetric(res.GCE[0].MTTFh, "gce-f1-micro-MTTF-h")
	}
}

// BenchmarkFig3MemoryPressure regenerates the simultaneous-revocation
// memory-pressure study (paper Figure 3).
func BenchmarkFig3MemoryPressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Increase[0], "incr-2GB-%")
		b.ReportMetric(100*res.Increase[1], "incr-4GB-%")
		b.ReportMetric(100*res.Increase[2], "incr-6GB-%")
	}
}

// BenchmarkFig4Correlation regenerates the pairwise spot-price
// correlation analysis (paper Figure 4).
func BenchmarkFig4Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(io.Discard, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.UncorrelatedFrac, "uncorrelated-pairs-%")
	}
}

// BenchmarkFig6aCheckpointTax regenerates the per-workload checkpointing
// overhead at MTTF = 50 h (paper Figure 6a).
func BenchmarkFig6aCheckpointTax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.TaxByWorkload["als"], "als-tax-%")
		b.ReportMetric(100*res.TaxByWorkload["kmeans"], "kmeans-tax-%")
		b.ReportMetric(100*res.TaxByWorkload["pagerank"], "pagerank-tax-%")
	}
}

// BenchmarkFig6bSystemVsRDD regenerates the application-level versus
// systems-level checkpointing comparison (paper Figure 6b).
func BenchmarkFig6bSystemVsRDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FlintTax, "flint-rdd-tax-%")
		b.ReportMetric(100*res.SystemTax, "system-level-tax-%")
	}
}

// BenchmarkFig6cTaxVsMTTF regenerates the checkpointing tax versus market
// volatility sweep (paper Figure 6c).
func BenchmarkFig6cTaxVsMTTF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		for j, h := range res.MTTFHours {
			b.ReportMetric(100*res.TaxByMTTF[j], "tax-"+itoa(int(h))+"h-%")
		}
	}
}

// BenchmarkFig7SingleRevocation regenerates the single-revocation
// recomputation cost split (paper Figure 7).
func BenchmarkFig7SingleRevocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Workloads {
			b.ReportMetric(100*res.Increase[j], name+"-incr-%")
		}
	}
}

// BenchmarkFig8FailureSweep regenerates running time under 0/1/5/10
// concurrent revocations with and without checkpointing (paper Figure 8).
func BenchmarkFig8FailureSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		for wi, name := range res.Workloads {
			b.ReportMetric(res.WithCheckpoint[wi][3], name+"-ckpt-10f-s")
			b.ReportMetric(res.RecomputeOnly[wi][3], name+"-recomp-10f-s")
		}
	}
}

// BenchmarkFig9Interactive regenerates the TPC-H response-time study
// (paper Figure 9).
func BenchmarkFig9Interactive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FailShort["recompute"], "recompute-fail-s")
		b.ReportMetric(res.FailShort["flint-batch"], "batch-fail-s")
		b.ReportMetric(res.FailShort["flint-interactive"], "interactive-fail-s")
	}
}

// BenchmarkFig10aRuntimeVsMTTF regenerates the runtime-overhead-versus-
// MTTF sweep on the canonical job (paper Figure 10a).
func BenchmarkFig10aRuntimeVsMTTF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(io.Discard, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overhead[0], "overhead-1h-%")
		b.ReportMetric(100*res.Overhead[len(res.Overhead)-1], "overhead-25h-%")
	}
}

// BenchmarkFig10bFlintVsSpark regenerates the Flint-versus-unmodified-
// Spark overhead comparison (paper Figure 10b).
func BenchmarkFig10bFlintVsSpark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(io.Discard, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FlintVolatile, "flint-volatile-%")
		b.ReportMetric(100*res.SparkVolatile, "spark-volatile-%")
	}
}

// BenchmarkFig11aUnitCost regenerates the unit-cost comparison across
// Flint, SpotFleet, Spark-EMR and on-demand (paper Figure 11a).
func BenchmarkFig11aUnitCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(io.Discard, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UnitCost["flint-batch"], "flint-batch-unit")
		b.ReportMetric(res.UnitCost["flint-interactive"], "flint-interactive-unit")
		b.ReportMetric(res.UnitCost["spot-fleet"], "spot-fleet-unit")
		b.ReportMetric(res.UnitCost["emr-spot"], "emr-spot-unit")
	}
}

// BenchmarkFig11bBidSweep regenerates the expected-cost-versus-bid curve
// (paper Figure 11b).
func BenchmarkFig11bBidSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(io.Discard, 10)
		if err != nil {
			b.Fatal(err)
		}
		row := res.CostByBid["m2.2xlarge"]
		b.ReportMetric(row[0], "m2.2xlarge-bid0.25x-%OD")
		b.ReportMetric(row[4], "m2.2xlarge-bid1x-%OD")
		b.ReportMetric(row[len(row)-1], "m2.2xlarge-bid4x-%OD")
	}
}

// BenchmarkAblationFrontier quantifies frontier-only versus eager
// checkpointing (DESIGN.md design decision #1).
func BenchmarkAblationFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFrontier(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FlintTax, "frontier-tax-%")
		b.ReportMetric(100*res.EagerTax, "eager-tax-%")
	}
}

// BenchmarkAblationShuffleInterval quantifies the τ/P shuffle rule
// (DESIGN.md design decision #2).
func BenchmarkAblationShuffleInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationShuffle(io.Discard, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithBoost, "with-boost-s")
		b.ReportMetric(res.WithoutBoost, "uniform-tau-s")
	}
}

// BenchmarkAblationDiversification quantifies variance reduction from
// market mixing (DESIGN.md design decision #3).
func BenchmarkAblationDiversification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationDiversification(io.Discard)
		b.ReportMetric(res.Variance[0], "var-1-market")
		b.ReportMetric(res.Variance[len(res.Variance)-1], "var-8-markets")
	}
}

// BenchmarkDetbenchWorkers runs the fixed-seed determinism scenarios at
// serial and parallel pool widths. The virtual makespans must match
// exactly (the determinism contract); the wall-clock difference is the
// worker pool's actual speedup on this machine.
func BenchmarkDetbenchWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			exec.SetDefaultWorkers(w)
			defer exec.SetDefaultWorkers(0)
			for i := 0; i < b.N; i++ {
				res, err := experiments.Detbench(io.Discard, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				for _, sc := range res.Scenarios {
					b.ReportMetric(sc.VirtualS, sc.Name+"-virtual-s")
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
